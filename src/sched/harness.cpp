#include "sched/harness.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <semaphore>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "sched/coverage.hpp"
#include "sched/turnstile.hpp"
#include "stm/sched_hook.hpp"
#include "stm/txalloc.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tmb::sched {

namespace {

using stm::detail::YieldPoint;
using stm::detail::YieldSite;

/// The shared words all runs execute over: one 64-byte block per slot in a
/// process-static 64-byte-aligned arena. A static arena means every run in
/// a process sees identical addresses (exact in-process replay even for
/// TL2's address-hashed locks), and — because the harness pins
/// hash=shift-mask — two slots alias in the ownership table iff their
/// *distance* is a multiple of the entry count, which no ASLR shift can
/// change. Safe to share across sequential runs: the harness zeroes it per
/// run and never runs two schedules concurrently in one process (runs are
/// serialized by design — the turnstile admits one OS thread at a time).
std::uint64_t* arena() {
    alignas(64) static std::uint64_t words[kMaxSlots * 8];
    return words;
}

[[nodiscard]] std::uint64_t* slot_addr(std::uint32_t slot) {
    return arena() + std::size_t{slot} * 8;  // 64-byte stride: 1 block/slot
}

/// The dyn-mode indirection target: each slot's arena word holds one of
/// these as a bit-cast pointer, and every write replaces the node
/// (tx_alloc + tx_free) rather than the value. Reads dereference the node
/// *transactionally* — exactly the access a doomed reader performs on a
/// stale pointer, which epoch reclamation must keep mapped.
struct DynNode {
    explicit DynNode(std::uint64_t v) noexcept : value_word(v) {}
    std::uint64_t value_word;
};

/// The lifetime oracle's ledger. While installed it vetoes *every* release
/// (on_reclaim returns false) and takes ownership of the block instead:
/// released nodes therefore stay mapped with their contents intact, so a
/// worker that touches one — the bug epoch reclamation exists to prevent —
/// reads defined memory, re-checks the ledger, and records a violation
/// instead of committing undefined behavior (and instead of tripping ASan
/// in the deliberately-broken eager_reclaim fault tests). Because nothing
/// is handed back to the heap until release_all() at end of run, addresses
/// are never recycled mid-run and the ledger can never go stale. No
/// locking: the turnstile admits one OS thread at a time, and the main
/// thread only touches the tracker before workers start / after they join.
class LifetimeTracker final : public stm::detail::ReclaimObserver {
public:
    ~LifetimeTracker() override { release_all(); }

    void on_alloc(void* ptr) noexcept override {
        if (released_.erase(ptr) != 0) {
            // Impossible while we own every released block — the heap
            // cannot hand one out again. Seeing it means a recycling path
            // (the leaky_cache fault's magazine short-circuit) handed out
            // a block before its epoch was safe. Ownership of the storage
            // passes back to the allocator with the block now live again,
            // so teardown frees it exactly once.
            record("allocator returned a block the lifetime oracle holds");
        }
    }

    [[nodiscard]] bool on_reclaim(void* ptr) noexcept override {
        if (!released_.insert(ptr).second) {
            record("reclaimer released one block twice");
        }
        return false;  // the tracker owns it now; freed in release_all()
    }

    [[nodiscard]] bool released(const void* ptr) const {
        return released_.count(const_cast<void*>(ptr)) != 0;
    }

    /// Hands the impounded blocks back to the heap. End of run only (all
    /// transactions finished, ledger checks done). Raw operator delete: the
    /// blocks were vetoed *before* the runtime ran their destructors or
    /// recycled their storage, so what we hold is size-class raw memory
    /// from tx_alloc's cacheable path (DynNode's destructor is trivial —
    /// skipping it loses nothing).
    void release_all() noexcept {
        for (void* ptr : released_) ::operator delete(ptr);
        released_.clear();
    }

    void record(std::string message) noexcept {
        if (!first_error_) first_error_ = std::move(message);
    }

    [[nodiscard]] const std::optional<std::string>& first_error() const {
        return first_error_;
    }

private:
    std::unordered_set<void*> released_;
    std::optional<std::string> first_error_;
};

/// Per-transaction seed: the accumulator's starting point, and the basis of
/// the commutative mode's write deltas.
[[nodiscard]] std::uint64_t tx_seed(const HarnessConfig& cfg, std::uint32_t t,
                                    std::uint32_t k) {
    return util::mix64(cfg.workload_seed ^
                       (std::uint64_t{t} * 0x9e3779b97f4a7c15ULL + k + 1));
}

[[nodiscard]] std::uint64_t op_delta(const HarnessConfig& cfg, std::uint32_t t,
                                     std::uint32_t k, std::size_t op_index) {
    return (util::mix64(tx_seed(cfg, t, k) ^ (op_index + 1)) & 0xff) + 1;
}

void validate(const HarnessConfig& cfg, const stm::Stm& tm) {
    if (cfg.threads == 0 || cfg.threads > kMaxScheduleThreads) {
        throw std::invalid_argument("sched harness: threads must be in [1, " +
                                    std::to_string(kMaxScheduleThreads) + "]");
    }
    if (cfg.threads > tm.max_live_executors()) {
        throw std::invalid_argument(
            "sched harness: threads=" + std::to_string(cfg.threads) +
            " exceeds the backend's capacity of " +
            std::to_string(tm.max_live_executors()));
    }
    if (cfg.slots == 0 || cfg.slots > kMaxSlots) {
        throw std::invalid_argument("sched harness: slots must be in [1, " +
                                    std::to_string(kMaxSlots) + "]");
    }
    if (cfg.txs_per_thread == 0 || cfg.ops_per_tx == 0) {
        throw std::invalid_argument(
            "sched harness: txs and ops must be >= 1");
    }
}

[[nodiscard]] std::string format_double(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

HarnessConfig harness_config_from(const config::Config& cfg) {
    HarnessConfig out;
    out.backend = cfg.get("backend", out.backend);
    out.table = cfg.get("table", out.table);
    out.entries = cfg.get_u64("entries", out.entries);
    out.commit_time_locks =
        cfg.get_bool("commit_time_locks", out.commit_time_locks);
    out.clock = cfg.get("clock", out.clock);
    out.engine = cfg.get("engine", out.engine);
    out.policy = cfg.get("policy", out.policy);
    out.epoch = cfg.get_u64("epoch", out.epoch);
    out.max_entries = cfg.get_u64("max_entries", out.max_entries);
    out.threads = cfg.get_u32("threads", out.threads);
    out.txs_per_thread = cfg.get_u32("txs", out.txs_per_thread);
    out.ops_per_tx = cfg.get_u32("ops", out.ops_per_tx);
    out.slots = cfg.get_u32("slots", out.slots);
    out.write_fraction = cfg.get_double("wfrac", out.write_fraction);
    out.read_only_fraction = cfg.get_double("rofrac", out.read_only_fraction);
    const std::string mode = cfg.get("mode", out.commutative ? "incr" : "acc");
    if (mode == "incr") {
        out.commutative = true;
        out.dynamic = false;
    } else if (mode == "acc") {
        out.commutative = false;
        out.dynamic = false;
    } else if (mode == "dyn") {
        // Node-replacing writes are order-sensitive (acc value rule), so
        // dyn is never commutative — the differential oracle excludes it.
        out.commutative = false;
        out.dynamic = true;
    } else {
        throw std::invalid_argument("sched harness: unknown mode '" + mode +
                                    "' (known: acc, incr, dyn)");
    }
    out.workload_seed = cfg.get_u64("wseed", out.workload_seed);
    if (cfg.has("cache_blocks")) {
        out.cache_blocks =
            static_cast<std::int64_t>(cfg.get_u64("cache_blocks", 0));
    }
    out.step_limit = cfg.get_u64("step_limit", out.step_limit);
    return out;
}

config::Config stm_spec(const HarnessConfig& cfg) {
    config::Config out;
    out.set("backend", cfg.backend);
    if (cfg.backend == "table" || cfg.backend == "adaptive") {
        out.set("table", cfg.table);
    }
    if (cfg.backend == "adaptive") {
        if (!cfg.engine.empty()) out.set("engine", cfg.engine);
        if (!cfg.policy.empty()) out.set("policy", cfg.policy);
        if (cfg.epoch != 0) out.set("epoch", std::to_string(cfg.epoch));
        if (cfg.max_entries != 0) {
            out.set("max_entries", std::to_string(cfg.max_entries));
        }
    }
    out.set("entries", std::to_string(cfg.entries));
    out.set("block_bytes", "64");
    // Determinism pins: shift-mask makes ownership-table aliasing a pure
    // function of slot distances (ASLR-proof), `none` removes sleeps and
    // jitter from the retry loop.
    out.set("hash", "shift-mask");
    out.set("contention", "none");
    // Shard count is pinned (not hardware concurrency): which shard a
    // context binds to must not depend on the machine replaying a schedule.
    out.set("reclaim_shards", "2");
    if (cfg.cache_blocks >= 0) {
        out.set("cache_blocks", std::to_string(cfg.cache_blocks));
    }
    if (cfg.commit_time_locks) out.set("commit_time_locks", "1");
    if (!cfg.clock.empty()) out.set("clock", cfg.clock);
    return out;
}

std::string repro_flags(const HarnessConfig& cfg) {
    std::string out = "--backend=" + cfg.backend;
    if (cfg.backend == "table" || cfg.backend == "adaptive") {
        out += " --table=" + cfg.table;
    }
    if (cfg.backend == "adaptive") {
        if (!cfg.engine.empty()) out += " --engine=" + cfg.engine;
        if (!cfg.policy.empty()) out += " --policy=" + cfg.policy;
        if (cfg.epoch != 0) out += " --epoch=" + std::to_string(cfg.epoch);
        if (cfg.max_entries != 0) {
            out += " --max_entries=" + std::to_string(cfg.max_entries);
        }
    }
    if (cfg.commit_time_locks) out += " --commit_time_locks=1";
    if (!cfg.clock.empty()) out += " --clock=" + cfg.clock;
    out += " --entries=" + std::to_string(cfg.entries);
    out += " --threads=" + std::to_string(cfg.threads);
    out += " --txs=" + std::to_string(cfg.txs_per_thread);
    out += " --ops=" + std::to_string(cfg.ops_per_tx);
    out += " --slots=" + std::to_string(cfg.slots);
    out += " --wfrac=" + format_double(cfg.write_fraction);
    out += " --rofrac=" + format_double(cfg.read_only_fraction);
    out += std::string(" --mode=") +
           (cfg.dynamic ? "dyn" : (cfg.commutative ? "incr" : "acc"));
    out += " --wseed=" + std::to_string(cfg.workload_seed);
    if (cfg.cache_blocks >= 0) {
        out += " --cache_blocks=" + std::to_string(cfg.cache_blocks);
    }
    return out;
}

std::string repro_line(const HarnessConfig& cfg, const std::string& schedule) {
    return "sched_explorer " + repro_flags(cfg) + " --schedule=" + schedule;
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

std::vector<std::vector<TxProgram>> generate_programs(
    const HarnessConfig& cfg) {
    util::Xoshiro256 gen(util::mix64(cfg.workload_seed ^ 0x5eedfeedULL));
    std::vector<std::vector<TxProgram>> programs(cfg.threads);
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        programs[t].resize(cfg.txs_per_thread);
        for (std::uint32_t k = 0; k < cfg.txs_per_thread; ++k) {
            TxProgram& prog = programs[t][k];
            const bool read_only = gen.bernoulli(cfg.read_only_fraction);
            bool has_write = false;
            for (std::uint32_t i = 0; i < cfg.ops_per_tx; ++i) {
                TxOp op;
                op.slot = static_cast<std::uint32_t>(gen.below(cfg.slots));
                op.is_write = !read_only && gen.bernoulli(cfg.write_fraction);
                has_write |= op.is_write;
                prog.ops.push_back(op);
            }
            // A "writer" transaction with zero sampled writes would dilute
            // both oracles; promote its last access.
            if (!read_only && !has_write) prog.ops.back().is_write = true;
        }
    }
    return programs;
}

// ---------------------------------------------------------------------------
// The scheduled run
// ---------------------------------------------------------------------------

RunResult run_schedule(const HarnessConfig& cfg,
                       const std::vector<std::vector<TxProgram>>& programs,
                       Schedule& schedule) {
    const auto tm = stm::Stm::create(stm_spec(cfg));
    return run_schedule(cfg, programs, schedule, *tm);
}

RunResult run_schedule(const HarnessConfig& cfg,
                       const std::vector<std::vector<TxProgram>>& programs,
                       Schedule& schedule, stm::Stm& tm) {
    if (programs.size() != cfg.threads) {
        throw std::invalid_argument(
            "sched harness: programs/threads mismatch");
    }
    validate(cfg, tm);

    std::fill(arena(), arena() + std::size_t{kMaxSlots} * 8, 0);

    // Dyn mode: arm the lifetime oracle on the runtime's reclaim domain,
    // then seed every slot with a tx_alloc'd node holding 0 (the serial
    // replay's initial state). The snapshot of the allocation ledger makes
    // the end-of-run balance check a per-run delta, so a caller-owned Stm
    // can host many dyn runs in sequence.
    LifetimeTracker tracker;
    const stm::ReclaimStats reclaim_before = tm.reclaim_stats();
    struct ObserverGuard {
        stm::Stm* tm = nullptr;
        ~ObserverGuard() {
            if (tm) tm->reclaim_domain().set_observer(nullptr);
        }
    } observer_guard;
    if (cfg.dynamic) {
        tm.reclaim_domain().set_observer(&tracker);
        observer_guard.tm = &tm;
        for (std::uint32_t s = 0; s < cfg.slots; ++s) {
            tm.atomically([&](stm::Transaction& tx) {
                DynNode* node = tx.tx_alloc<DynNode>(0);
                tx.store(slot_addr(s), std::bit_cast<std::uint64_t>(node));
            });
        }
    }

    // Executors are created sequentially here so virtual thread t always
    // binds table TxId t — part of the determinism contract.
    std::vector<std::unique_ptr<stm::Executor>> executors;
    executors.reserve(cfg.threads);
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        executors.push_back(tm.make_executor());
    }

    RunResult result;
    // Capacity retention: the commit log's final size is known up front,
    // and each record's read/write logs are bounded by the program length —
    // reserve once instead of growing on the hot turnstile path.
    result.commit_log.reserve(std::size_t{cfg.threads} * cfg.txs_per_thread);
    result.schedule.reserve(256);
    Turnstile ts(cfg.threads);

    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        workers.emplace_back([&, t] {
            WorkerHook hook(ts, t);
            stm::detail::SchedulerHook* previous =
                stm::detail::install_scheduler_hook(&hook);
            std::exception_ptr error;
            try {
                stm::Executor& exec = *executors[t];
                for (std::uint32_t k = 0; k < cfg.txs_per_thread; ++k) {
                    const TxProgram& prog = programs[t][k];
                    CommitRecord rec;
                    rec.reads.reserve(prog.ops.size());
                    rec.writes.reserve(prog.ops.size());
                    // The body re-executes per attempt; only the successful
                    // attempt's records survive (cleared on entry).
                    exec.atomically([&](stm::Transaction& tx) {
                        rec.reads.clear();
                        rec.writes.clear();
                        rec.begin_commits = result.commit_log.size();
                        // Dyn: nodes this attempt already tx_free'd. Broken
                        // reclamation can recycle one address into two
                        // slots; freeing it twice must become a reported
                        // violation, not a logic_error out of record_free.
                        std::vector<DynNode*> freed;
                        std::uint64_t acc = tx_seed(cfg, t, k);
                        for (std::size_t i = 0; i < prog.ops.size(); ++i) {
                            const TxOp& op = prog.ops[i];
                            std::uint64_t v = 0;
                            DynNode* node = nullptr;
                            bool node_ok = false;
                            if (cfg.dynamic) {
                                node = std::bit_cast<DynNode*>(
                                    tx.load(slot_addr(op.slot)));
                                // The lifetime oracle: dereferencing a
                                // released block is the failure epoch
                                // reclamation exists to prevent — report it
                                // and read 0 instead of touching freed
                                // memory (doomed readers included).
                                const auto uar = [&] {
                                    tracker.record(
                                        "use-after-reclaim: thread " +
                                        std::to_string(t) +
                                        " touched the released node of "
                                        "slot " +
                                        std::to_string(op.slot));
                                };
                                if (node == nullptr) {
                                    tracker.record(
                                        "thread " + std::to_string(t) +
                                        " read a null node from slot " +
                                        std::to_string(op.slot));
                                } else if (tracker.released(node)) {
                                    uar();
                                } else {
                                    node_ok = true;
                                    // The load yields before it reads, so
                                    // the node can be released while this
                                    // attempt is parked holding the
                                    // pointer: re-check after it returns,
                                    // and on the abort path a doomed
                                    // reader takes when its snapshot
                                    // validation fails.
                                    try {
                                        v = tx.load(&node->value_word);
                                    } catch (...) {
                                        if (tracker.released(node)) uar();
                                        throw;
                                    }
                                    if (tracker.released(node)) uar();
                                }
                            } else {
                                v = tx.load(slot_addr(op.slot));
                            }
                            rec.reads.push_back({op.slot, v});
                            acc = util::mix64(acc ^ v);
                            if (op.is_write) {
                                const std::uint64_t nv =
                                    cfg.commutative
                                        ? v + op_delta(cfg, t, k, i)
                                        : util::mix64(acc);
                                if (cfg.dynamic) {
                                    DynNode* fresh = tx.tx_alloc<DynNode>(nv);
                                    tx.store(
                                        slot_addr(op.slot),
                                        std::bit_cast<std::uint64_t>(fresh));
                                    if (node_ok &&
                                        std::find(freed.begin(), freed.end(),
                                                  node) != freed.end()) {
                                        tracker.record(
                                            "one node reached two slots — "
                                            "second tx_free averted");
                                    } else if (node_ok) {
                                        tx.tx_free(node);
                                        freed.push_back(node);
                                    }
                                } else {
                                    tx.store(slot_addr(op.slot), nv);
                                }
                                rec.writes.push_back({op.slot, nv});
                            }
                        }
                    });
                    rec.thread = t;
                    rec.tx_index = k;
                    // Commit-log position == commit order: between the
                    // backend's commit and this push no yield point runs,
                    // so no other virtual thread can slip in between.
                    result.commit_log.push_back(std::move(rec));
                }
            } catch (const HarnessCancelled&) {
                // Step budget exhausted: unwind quietly.
            } catch (...) {
                error = std::current_exception();
            }
            stm::detail::install_scheduler_hook(previous);
            ts.worker_finish(t, std::move(error));
        });
    }

    // Workers race freely only up to their first yield point (which every
    // one reaches before touching shared state); from here on the turnstile
    // admits exactly one at a time.
    ts.await_parked(cfg.threads);

    std::uint64_t runnable = 0;
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        if (!ts.finished(t)) runnable |= std::uint64_t{1} << t;
    }

    CoverageAccumulator coverage;
    while (runnable != 0) {
        const std::uint32_t pick = schedule.pick(runnable, result.steps);
        if (pick >= 64 || ((runnable >> pick) & 1) == 0) {
            ts.cancel();
            for (std::uint64_t m = runnable; m != 0; m &= m - 1) {
                ts.grant(static_cast<std::uint32_t>(std::countr_zero(m)));
            }
            for (auto& w : workers) w.join();
            throw std::logic_error(
                "sched harness: schedule picked a non-runnable thread " +
                std::to_string(pick));
        }
        result.schedule.push_back(thread_to_char(pick));
        const std::size_t commits_before = result.commit_log.size();
        ts.grant(pick);
        ++result.steps;

        if (ts.finished(pick)) {
            runnable &= ~(std::uint64_t{1} << pick);
            schedule.observe(pick, Event::kThreadDone);
            coverage.finish(pick);
        } else {
            coverage.step(pick, ts.last_point(pick), ts.last_site(pick));
            result.sites_seen |=
                std::uint32_t{1} << static_cast<std::uint32_t>(
                    ts.last_site(pick));
            if (ts.last_point(pick) == YieldPoint::kRetry) {
                schedule.observe(pick, Event::kAbort);
            }
        }
        if (result.commit_log.size() > commits_before) {
            schedule.observe(pick, Event::kCommit);
        }

        if (result.steps >= cfg.step_limit && runnable != 0) {
            result.cancelled = true;
            ts.cancel();
            for (std::uint64_t m = runnable; m != 0; m &= m - 1) {
                ts.grant(static_cast<std::uint32_t>(std::countr_zero(m)));
            }
            break;
        }
    }

    for (auto& w : workers) w.join();
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        if (ts.error(t)) std::rethrow_exception(ts.error(t));
    }

    result.final_state.resize(cfg.slots);
    std::uint64_t h = 0x5eedc0de ^ cfg.slots;
    for (std::uint32_t s = 0; s < cfg.slots; ++s) {
        if (cfg.dynamic) {
            // Quiescent: plain reads through the committed node pointers.
            auto* node = std::bit_cast<DynNode*>(*slot_addr(s));
            if (node == nullptr || tracker.released(node)) {
                tracker.record("slot " + std::to_string(s) + " holds a " +
                               (node == nullptr ? "null" : "released") +
                               " node at quiescence");
            } else {
                result.final_state[s] = node->value_word;
            }
        } else {
            result.final_state[s] = *slot_addr(s);
        }
        h = util::mix64(h ^ (result.final_state[s] +
                             s * 0x9e3779b97f4a7c15ULL));
    }
    result.state_hash = h;

    result.stats = tm.stats();  // conflict classification (instance block)
    for (const auto& exec : executors) {
        result.stats.merge(exec->stats());  // commits/aborts (shards)
    }
    result.signature = coverage.signature(result.stats);
    // Retire the executor contexts before the dyn balance check: their
    // buffered retired blocks must reach the shards for the full drain
    // below to account for every tx_free.
    executors.clear();

    if (cfg.dynamic) {
        // Free the surviving nodes through the runtime so the allocation
        // ledger must balance: after a full drain any remaining pending
        // block or live-count delta is a reclaimer bug, and it becomes the
        // run's lifetime verdict alongside anything the workers recorded.
        // The leaky_cache fault is suspended for this cleanup: it targets
        // the workers' steady-state recycling (already recorded by now),
        // and letting it divert these frees into the runtime's *pooled*
        // context — whose magazine outlives the tracker — would leave
        // impounded blocks owned by both sides at teardown.
        const bool leaky_was =
            stm::detail::test_faults().leaky_cache.exchange(
                false, std::memory_order_relaxed);
        for (std::uint32_t s = 0; s < cfg.slots; ++s) {
            tm.atomically([&](stm::Transaction& tx) {
                auto* node =
                    std::bit_cast<DynNode*>(tx.load(slot_addr(s)));
                if (node != nullptr && !tracker.released(node)) {
                    tx.tx_free(node);
                }
                tx.store(slot_addr(s), 0);
            });
        }
        tm.reclaim_drain();
        const stm::ReclaimStats reclaim_after = tm.reclaim_stats();
        if (reclaim_after.pending_blocks() != 0) {
            tracker.record(
                std::to_string(reclaim_after.pending_blocks()) +
                " retired blocks still pending after a full drain");
        } else if (reclaim_after.live_blocks() !=
                   reclaim_before.live_blocks()) {
            tracker.record(
                "allocation ledger unbalanced at end of run: " +
                std::to_string(reclaim_after.live_blocks()) +
                " live blocks vs " +
                std::to_string(reclaim_before.live_blocks()) +
                " before it — leaked or over-released nodes");
        }
        result.lifetime_error = tracker.first_error();
        tracker.release_all();  // hand the impounded blocks back
        stm::detail::test_faults().leaky_cache.store(
            leaky_was, std::memory_order_relaxed);
    }

    if (!result.cancelled) {
        if (const std::uint64_t held = tm.occupied_metadata_entries()) {
            throw std::runtime_error(
                "sched harness: ownership table not quiescent after run: " +
                std::to_string(held) + " entries still held");
        }
    }
    return result;
}

// ---------------------------------------------------------------------------
// Serializability oracle
// ---------------------------------------------------------------------------

namespace {

/// Shared oracle core. With `require_complete`, every transaction must have
/// committed (the classic serializability oracle). Without it — the
/// kill-point / crash-consistency mode — the run may have been cancelled
/// mid-flight, and the oracle instead demands that whatever DID commit is a
/// per-thread gap-free prefix whose serial replay reproduces memory: no
/// torn writes from a transaction killed mid-commit, no lost effects of a
/// transaction that reported commit before the kill.
std::optional<std::string> oracle_core(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, const RunResult& run,
    bool require_complete) {
    const auto describe = [&](std::uint32_t t, std::uint32_t k) {
        return "thread " + std::to_string(t) + " tx " + std::to_string(k);
    };
    if (run.lifetime_error) {
        return "lifetime oracle: " + *run.lifetime_error;
    }
    if (require_complete && run.cancelled) {
        return "run cancelled after " + std::to_string(run.steps) +
               " steps (step_limit " + std::to_string(cfg.step_limit) +
               " exhausted — livelocked schedule or config mismatch)";
    }
    const std::uint64_t expected =
        std::uint64_t{cfg.threads} * cfg.txs_per_thread;
    if (require_complete ? run.commit_log.size() != expected
                         : run.commit_log.size() > expected) {
        return "commit log holds " + std::to_string(run.commit_log.size()) +
               " transactions, expected " +
               (require_complete ? "" : "at most ") + std::to_string(expected);
    }

    // Serial replay in commit order, keeping every intermediate state for
    // the read-only window check.
    std::vector<std::vector<std::uint64_t>> snapshots;
    snapshots.reserve(run.commit_log.size() + 1);
    snapshots.emplace_back(cfg.slots, 0);

    // Each thread runs its transactions in index order, so the global
    // commit log must show every thread's tx indices as a gap-free,
    // in-order prefix 0..k — in the kill-point mode this IS the
    // prefix-consistency property.
    std::vector<std::uint32_t> next_tx(cfg.threads, 0);

    for (std::size_t pos = 0; pos < run.commit_log.size(); ++pos) {
        const CommitRecord& rec = run.commit_log[pos];
        if (rec.thread >= cfg.threads || rec.tx_index >= cfg.txs_per_thread) {
            return "commit log names unknown " +
                   describe(rec.thread, rec.tx_index);
        }
        if (rec.tx_index != next_tx[rec.thread]) {
            return describe(rec.thread, rec.tx_index) +
                   " committed out of order: expected tx " +
                   std::to_string(next_tx[rec.thread]) +
                   " next for that thread (commit history is not a "
                   "per-thread prefix)";
        }
        ++next_tx[rec.thread];

        const TxProgram& prog = programs[rec.thread][rec.tx_index];
        const bool writer = !prog.read_only();
        std::vector<std::uint64_t> state = snapshots.back();

        std::uint64_t acc = tx_seed(cfg, rec.thread, rec.tx_index);
        std::size_t ri = 0;
        std::size_t wi = 0;
        for (std::size_t i = 0; i < prog.ops.size(); ++i) {
            const TxOp& op = prog.ops[i];
            const std::uint64_t v = state[op.slot];
            if (ri >= rec.reads.size() || rec.reads[ri].slot != op.slot) {
                return describe(rec.thread, rec.tx_index) +
                       " read log does not match its program";
            }
            if (writer && rec.reads[ri].value != v) {
                return describe(rec.thread, rec.tx_index) + " (commit #" +
                       std::to_string(pos + 1) + ") read slot " +
                       std::to_string(op.slot) + " = " +
                       std::to_string(rec.reads[ri].value) +
                       " but the serial replay in commit order gives " +
                       std::to_string(v) + " — not serializable";
            }
            // For the replay, trust the recorded read (writers proved it
            // equal; read-only txs are window-checked below and do not
            // write).
            const std::uint64_t observed = rec.reads[ri].value;
            ++ri;
            acc = util::mix64(acc ^ (writer ? v : observed));
            if (op.is_write) {
                const std::uint64_t nv =
                    cfg.commutative
                        ? v + op_delta(cfg, rec.thread, rec.tx_index, i)
                        : util::mix64(acc);
                if (wi >= rec.writes.size() || rec.writes[wi].slot != op.slot ||
                    rec.writes[wi].value != nv) {
                    return describe(rec.thread, rec.tx_index) +
                           " wrote a value the serial replay does not produce";
                }
                ++wi;
                state[op.slot] = nv;
            }
        }
        snapshots.push_back(std::move(state));
    }

    // Read-only transactions: their snapshot must exist somewhere between
    // the begin of their successful attempt and their commit position (TL2
    // serializes read-only transactions at their read version, which may
    // precede commit completion).
    for (std::size_t pos = 0; pos < run.commit_log.size(); ++pos) {
        const CommitRecord& rec = run.commit_log[pos];
        if (!programs[rec.thread][rec.tx_index].read_only()) continue;
        const std::size_t lo =
            std::min<std::size_t>(rec.begin_commits, pos);
        bool matched = false;
        for (std::size_t k = lo; k <= pos && !matched; ++k) {
            matched = std::all_of(
                rec.reads.begin(), rec.reads.end(), [&](const SlotValue& r) {
                    return snapshots[k][r.slot] == r.value;
                });
        }
        if (!matched) {
            return describe(rec.thread, rec.tx_index) +
                   " (read-only, commit #" + std::to_string(pos + 1) +
                   ") observed a state that exists at no serial point in "
                   "its begin..commit window — not serializable";
        }
    }

    if (snapshots.back() != run.final_state) {
        std::string diff;
        for (std::uint32_t s = 0; s < cfg.slots; ++s) {
            if (snapshots.back()[s] != run.final_state[s]) {
                diff += " slot " + std::to_string(s) + ": serial " +
                        std::to_string(snapshots.back()[s]) + " vs actual " +
                        std::to_string(run.final_state[s]) + ";";
            }
        }
        return "final state diverges from the serial replay in commit "
               "order:" +
               diff;
    }
    return std::nullopt;
}

}  // namespace

std::optional<std::string> check_serializable(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const RunResult& run) {
    return oracle_core(cfg, programs, run, /*require_complete=*/true);
}

std::optional<std::string> check_prefix_consistent(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const RunResult& run) {
    return oracle_core(cfg, programs, run, /*require_complete=*/false);
}

std::optional<std::string> check_kill_point(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const std::string& schedule, std::uint64_t kill_step) {
    HarnessConfig killed = cfg;
    killed.step_limit = kill_step;
    config::Config sc;
    sc.set("sched", "replay");
    sc.set("schedule", schedule);
    const auto sch = make_schedule(sc, 0);
    const RunResult run = run_schedule(killed, programs, *sch);
    // A run that finishes before the kill point fires must pass the full
    // oracle; a killed run must leave a prefix-consistent history.
    if (!run.cancelled) return check_serializable(killed, programs, run);
    return check_prefix_consistent(killed, programs, run);
}

// ---------------------------------------------------------------------------
// Exploration / differential / minimization
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] Violation make_violation(const HarnessConfig& cfg,
                                       const RunResult& run,
                                       const std::string& error) {
    Violation v;
    v.schedule = run.schedule;
    v.repro = repro_line(cfg, run.schedule);
    v.message = error + "\n  repro: " + v.repro;
    return v;
}

[[nodiscard]] std::uint64_t run_seed(std::uint64_t base, std::uint64_t n) {
    return util::mix64(base + n * 0x9e3779b97f4a7c15ULL + 1);
}

}  // namespace

ExploreResult explore(const HarnessConfig& cfg, const config::Config& sched_cfg,
                      std::uint64_t count, std::uint64_t base_seed) {
    const auto programs = generate_programs(cfg);
    ExploreResult out;
    for (std::uint64_t n = 0; n < count; ++n) {
        const auto schedule = make_schedule(sched_cfg, run_seed(base_seed, n));
        const RunResult run = run_schedule(cfg, programs, *schedule);
        ++out.runs;
        out.stats.merge(run.stats);
        if (const auto error = check_serializable(cfg, programs, run)) {
            out.violations.push_back(make_violation(cfg, run, *error));
        }
    }
    return out;
}

std::string BackendPair::label() const {
    std::string out = backend;
    if (!table.empty()) out += "/" + table;
    if (commit_time_locks) out += "/lazy";
    return out;
}

std::vector<BackendPair> default_backend_pairs() {
    return {
        {"tl2", "", false},
        {"table", "tagless", false},
        {"table", "tagged", false},
        {"table", "tagless", true},
        {"table", "tagged", true},
        {"atomic", "", false},
    };
}

std::optional<std::string> run_differential(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const std::vector<BackendPair>& pairs, const config::Config& sched_cfg,
    std::uint64_t seed, std::vector<RunResult>* runs_out) {
    if (!cfg.commutative) {
        throw std::invalid_argument(
            "differential oracle requires the commutative workload "
            "(mode=incr): backends legitimately reorder commits, and only "
            "commutative writes make the final state order-independent");
    }
    if (pairs.empty()) {
        throw std::invalid_argument("differential oracle: no backend pairs");
    }

    const auto pair_cfg = [&](const BackendPair& pair) {
        HarnessConfig pc = cfg;
        pc.backend = pair.backend;
        if (!pair.table.empty()) pc.table = pair.table;
        pc.commit_time_locks = pair.commit_time_locks;
        return pc;
    };

    std::vector<RunResult> runs;
    runs.reserve(pairs.size());
    for (const BackendPair& pair : pairs) {
        const HarnessConfig pc = pair_cfg(pair);
        const auto schedule = make_schedule(sched_cfg, seed);
        RunResult run = run_schedule(pc, programs, *schedule);
        if (const auto error = check_serializable(pc, programs, run)) {
            const auto v = make_violation(pc, run, *error);
            if (runs_out) *runs_out = std::move(runs);
            return pair.label() + ": " + v.message;
        }
        runs.push_back(std::move(run));
    }

    std::optional<std::string> verdict;
    for (std::size_t i = 1; i < pairs.size() && !verdict; ++i) {
        if (runs[i].final_state != runs[0].final_state) {
            verdict = "final state of " + pairs[i].label() +
                      " differs from " + pairs[0].label() +
                      " on the identical workload and schedule seed " +
                      std::to_string(seed) + "\n  repro (" +
                      pairs[i].label() + "): " +
                      repro_line(pair_cfg(pairs[i]), runs[i].schedule);
        }
    }

    // The paper's direction: tagged organizations never report a false
    // conflict; tagless ones report at least as many as tagged (trivially,
    // since tagged must be zero — asserting both catches a broken
    // classifier on either side).
    for (std::size_t i = 0; i < pairs.size() && !verdict; ++i) {
        if (pairs[i].table == "tagged" &&
            runs[i].stats.false_conflicts != 0) {
            verdict = pairs[i].label() + " reported " +
                      std::to_string(runs[i].stats.false_conflicts) +
                      " false conflicts; tagged tables must report none";
        }
    }
    if (!verdict) {
        std::uint64_t tagged_false = 0;
        std::uint64_t tagless_false = 0;
        bool have_tagged = false;
        bool have_tagless = false;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (pairs[i].table == "tagged") {
                have_tagged = true;
                tagged_false =
                    std::max(tagged_false, runs[i].stats.false_conflicts);
            }
            if (pairs[i].table == "tagless") {
                have_tagless = true;
                tagless_false =
                    std::max(tagless_false, runs[i].stats.false_conflicts);
            }
        }
        if (have_tagged && have_tagless && tagless_false < tagged_false) {
            verdict = "tagless reported fewer false conflicts (" +
                      std::to_string(tagless_false) + ") than tagged (" +
                      std::to_string(tagged_false) +
                      ") — classification direction inverted";
        }
    }

    if (runs_out) *runs_out = std::move(runs);
    return verdict;
}

std::string minimize_schedule(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    std::string schedule) {
    const auto fails = [&](const std::string& picks) {
        config::Config sc;
        sc.set("sched", "replay");
        sc.set("schedule", picks);
        const auto sch = make_schedule(sc, 0);
        const RunResult run = run_schedule(cfg, programs, *sch);
        return check_serializable(cfg, programs, run).has_value();
    };
    return shrink_schedule(std::move(schedule), fails);
}

}  // namespace tmb::sched
