// schedule.hpp — interleaving policies for the schedule-exploration harness.
//
// A Schedule decides, at every scheduling step, which runnable virtual
// thread executes next. The harness (harness.hpp) records every pick as one
// base-36 character, so any explored run — random, PCT or hand-written —
// collapses to a compact string that replays bit-for-bit:
//
//   "0121020" ≡ step thread 0, then 1, then 2, then 1, ...
//
// Schedules are constructed by name through the config registry, exactly
// like tables and backends:
//
//   sched=rr       round-robin (the deterministic baseline)
//   sched=random   uniform over runnable threads from `seed`
//   sched=pct      PCT priority scheduling (Burckhardt et al.): random
//                  priorities, `depth`-1 priority-change points, and — the
//                  adaptation for abort/retry STMs, where no thread ever
//                  blocks — demote a thread whenever it aborts, so the
//                  conflict victim's blocker gets to finish. Without the
//                  demotion rule strict priorities livelock two mutually
//                  aborting transactions forever.
//   sched=replay   follow `schedule=<string>` exactly; past its end, fall
//                  back to round-robin (only reachable when the replay
//                  config differs from the recording config)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/config.hpp"
#include "config/registry.hpp"

namespace tmb::util {
class Xoshiro256;
}

namespace tmb::sched {

/// Largest virtual-thread count a schedule string can name: one base-36
/// digit (0-9, a-z) per pick.
inline constexpr std::uint32_t kMaxScheduleThreads = 36;

/// Feedback the harness reports after each step, so adaptive schedules
/// (PCT's abort demotion) stay livelock-free.
enum class Event : std::uint8_t { kAbort, kCommit, kThreadDone };

/// One interleaving policy. Instances are single-run state machines: the
/// harness creates a fresh Schedule per explored run.
class Schedule {
public:
    virtual ~Schedule() = default;

    /// Returns the virtual thread (bit index) to run next. `runnable` is a
    /// nonzero bitmask of unfinished threads; `step` counts picks so far.
    /// Must return a set bit of `runnable`.
    [[nodiscard]] virtual std::uint32_t pick(std::uint64_t runnable,
                                             std::uint64_t step) = 0;

    /// Observes the outcome of the step granted to `thread`.
    virtual void observe(std::uint32_t thread, Event event) {
        (void)thread;
        (void)event;
    }
};

/// The set-bit of `runnable` at or cyclically after `want` — the
/// deterministic adjustment used when a replayed pick names a finished
/// thread.
[[nodiscard]] std::uint32_t nearest_runnable(std::uint64_t runnable,
                                             std::uint32_t want) noexcept;

/// Base-36 encoding of thread indices for schedule strings.
[[nodiscard]] char thread_to_char(std::uint32_t thread) noexcept;
/// Decodes one schedule character; throws std::invalid_argument on anything
/// outside [0-9a-z].
[[nodiscard]] std::uint32_t char_to_thread(char c);

/// The process-wide schedule registry. Factories receive the per-run seed
/// (derived by the harness from the base seed and the run index) alongside
/// the Config holding `schedule=`, `depth=`, ...
using ScheduleRegistry = config::Registry<Schedule, std::uint64_t>;

/// Registered schedule names, in registration order.
[[nodiscard]] std::vector<std::string> schedule_names();

// ---------------------------------------------------------------------------
// Schedule-string mutation (the fuzzing substrate)
// ---------------------------------------------------------------------------
//
// A recorded base-36 pick string is a perfect mutation substrate: any
// string whose characters name threads below the workload's thread count
// is a valid schedule (replay adjusts picks that name finished threads via
// nearest_runnable, and runs past the string's end fall back to
// round-robin). The mutators below therefore only ever emit characters in
// [0, threads) and never emit an empty string.

/// The mutation operators the guided fuzzer draws from.
enum class Mutator : std::uint8_t {
    kFlip = 0,            ///< rewrite a few random picks
    kTruncateExtend = 1,  ///< cut at a random point, extend with fresh picks
    kSplice = 2,          ///< prefix of the base + suffix of the partner
    kShuffleRegion = 3,   ///< shuffle the picks inside one region
    kCrossover = 4,       ///< alternate blocks of base and partner
};
inline constexpr std::uint32_t kMutatorCount = 5;

[[nodiscard]] std::string_view to_string(Mutator m) noexcept;

/// Applies `m` to `base` (using `partner` as the second parent for splice
/// and crossover; an empty partner degrades those to truncate-and-extend).
/// Always returns a non-empty string of picks in [0, threads).
[[nodiscard]] std::string mutate_schedule(const std::string& base,
                                          const std::string& partner,
                                          std::uint32_t threads, Mutator m,
                                          util::Xoshiro256& rng);

/// Applies an rng-chosen mutator.
[[nodiscard]] std::string mutate_schedule(const std::string& base,
                                          const std::string& partner,
                                          std::uint32_t threads,
                                          util::Xoshiro256& rng);

/// True when every pick of `schedule` is a valid base-36 thread index
/// below `threads` (the syntactic validity every mutant must preserve).
[[nodiscard]] bool schedule_valid(const std::string& schedule,
                                  std::uint32_t threads) noexcept;

/// Greedy ddmin-style chunk removal: repeatedly drops substrings of
/// `schedule` while `keep(candidate)` stays true, probing at most
/// `max_probes` candidates (0 = unlimited). Returns the shortest string
/// found; the input unchanged when keep(schedule) is false. This is the
/// engine under both failure minimization (keep = "still violates") and
/// corpus-entry shrinking (keep = "same coverage signature").
[[nodiscard]] std::string shrink_schedule(
    std::string schedule, const std::function<bool(const std::string&)>& keep,
    std::uint64_t max_probes = 0);

/// Creates the schedule named by `sched=` (default "random"). Keys:
///   sched      rr | random | pct | replay
///   schedule   pick string (replay; also implies sched=replay when set)
///   depth      PCT priority-change points + 1 (default 3)
///   steps      PCT's estimate of the run's step count, over which change
///              points are sampled (default 256)
[[nodiscard]] std::unique_ptr<Schedule> make_schedule(const config::Config& cfg,
                                                      std::uint64_t seed);

}  // namespace tmb::sched
