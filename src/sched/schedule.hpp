// schedule.hpp — interleaving policies for the schedule-exploration harness.
//
// A Schedule decides, at every scheduling step, which runnable virtual
// thread executes next. The harness (harness.hpp) records every pick as one
// base-36 character, so any explored run — random, PCT or hand-written —
// collapses to a compact string that replays bit-for-bit:
//
//   "0121020" ≡ step thread 0, then 1, then 2, then 1, ...
//
// Schedules are constructed by name through the config registry, exactly
// like tables and backends:
//
//   sched=rr       round-robin (the deterministic baseline)
//   sched=random   uniform over runnable threads from `seed`
//   sched=pct      PCT priority scheduling (Burckhardt et al.): random
//                  priorities, `depth`-1 priority-change points, and — the
//                  adaptation for abort/retry STMs, where no thread ever
//                  blocks — demote a thread whenever it aborts, so the
//                  conflict victim's blocker gets to finish. Without the
//                  demotion rule strict priorities livelock two mutually
//                  aborting transactions forever.
//   sched=replay   follow `schedule=<string>` exactly; past its end, fall
//                  back to round-robin (only reachable when the replay
//                  config differs from the recording config)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "config/registry.hpp"

namespace tmb::sched {

/// Largest virtual-thread count a schedule string can name: one base-36
/// digit (0-9, a-z) per pick.
inline constexpr std::uint32_t kMaxScheduleThreads = 36;

/// Feedback the harness reports after each step, so adaptive schedules
/// (PCT's abort demotion) stay livelock-free.
enum class Event : std::uint8_t { kAbort, kCommit, kThreadDone };

/// One interleaving policy. Instances are single-run state machines: the
/// harness creates a fresh Schedule per explored run.
class Schedule {
public:
    virtual ~Schedule() = default;

    /// Returns the virtual thread (bit index) to run next. `runnable` is a
    /// nonzero bitmask of unfinished threads; `step` counts picks so far.
    /// Must return a set bit of `runnable`.
    [[nodiscard]] virtual std::uint32_t pick(std::uint64_t runnable,
                                             std::uint64_t step) = 0;

    /// Observes the outcome of the step granted to `thread`.
    virtual void observe(std::uint32_t thread, Event event) {
        (void)thread;
        (void)event;
    }
};

/// The set-bit of `runnable` at or cyclically after `want` — the
/// deterministic adjustment used when a replayed pick names a finished
/// thread.
[[nodiscard]] std::uint32_t nearest_runnable(std::uint64_t runnable,
                                             std::uint32_t want) noexcept;

/// Base-36 encoding of thread indices for schedule strings.
[[nodiscard]] char thread_to_char(std::uint32_t thread) noexcept;
/// Decodes one schedule character; throws std::invalid_argument on anything
/// outside [0-9a-z].
[[nodiscard]] std::uint32_t char_to_thread(char c);

/// The process-wide schedule registry. Factories receive the per-run seed
/// (derived by the harness from the base seed and the run index) alongside
/// the Config holding `schedule=`, `depth=`, ...
using ScheduleRegistry = config::Registry<Schedule, std::uint64_t>;

/// Registered schedule names, in registration order.
[[nodiscard]] std::vector<std::string> schedule_names();

/// Creates the schedule named by `sched=` (default "random"). Keys:
///   sched      rr | random | pct | replay
///   schedule   pick string (replay; also implies sched=replay when set)
///   depth      PCT priority-change points + 1 (default 3)
///   steps      PCT's estimate of the run's step count, over which change
///              points are sampled (default 256)
[[nodiscard]] std::unique_ptr<Schedule> make_schedule(const config::Config& cfg,
                                                      std::uint64_t seed);

}  // namespace tmb::sched
