// coverage.hpp — behavior signatures for coverage-guided schedule fuzzing.
//
// The harness (harness.hpp) already makes every explored run deterministic
// and oracle-checked; what blind sampling lacks is a notion of whether a
// new schedule *did anything new*. This layer hashes each run into a
// 64-bit behavior signature built from three ingredients the run produces
// for free:
//
//   1. Per-thread yield-event edges, AFL-style. Every scheduler step parks
//      the granted thread at a (YieldPoint, YieldSite) event; consecutive
//      events of the SAME thread form an edge, hashed into a fixed bucket
//      array whose hit counts are collapsed into AFL's coarse count
//      classes (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+). Two runs differ
//      only when some thread traversed a different branch sequence — or
//      the same sequence a categorically different number of times.
//   2. The backend-branch bits carried by YieldSite: an eager acquire, a
//      lazy commit-lock, a TL2 load, a depot refill and an engine swap are
//      distinct vocabulary even when their YieldPoint kind coincides.
//   3. A quantized StmStats vector (aborts, false conflicts, clock CAS
//      failures, allocator cache hits/misses, shard flushes, policy
//      switches, ... — each reduced to its bit width), so runs that
//      interleave identically but stress a counter into a new magnitude
//      still count as new behavior.
//
// Identical runs produce identical signatures (everything hashed is a pure
// function of the replayed execution), so a CoverageMap never reports
// false "new coverage" for a replay — test-asserted.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>

#include "sched/schedule.hpp"
#include "stm/sched_hook.hpp"
#include "stm/stm.hpp"

namespace tmb::sched {

/// Edge-bucket count. Power of two; small enough that zeroing one
/// accumulator per run is noise next to the run itself, large enough that
/// the handful of hundreds of distinct edges a run can produce rarely
/// collide.
inline constexpr std::uint32_t kCoverageBuckets = 4096;

/// AFL's count classes: collapses a raw hit count into one of 8 coarse
/// classes (0 is never stored — an untouched bucket contributes nothing).
[[nodiscard]] std::uint32_t coverage_count_class(std::uint32_t count) noexcept;

/// Bit-width quantization for the stats vector: 0 → 0, else 1 + floor(log2).
[[nodiscard]] std::uint32_t coverage_quantize(std::uint64_t value) noexcept;

/// Per-run signature accumulator. The harness feeds it one event per
/// scheduler step; signature() folds the bucketed edge map with the
/// quantized stats vector into the run's 64-bit behavior signature.
class CoverageAccumulator {
public:
    CoverageAccumulator() noexcept { prev_.fill(0); }

    /// Records that `thread` parked at (point, site) after this step.
    void step(std::uint32_t thread, stm::detail::YieldPoint point,
              stm::detail::YieldSite site) noexcept;

    /// Records that `thread` ran to completion on this step.
    void finish(std::uint32_t thread) noexcept;

    /// The run's behavior signature: bucketed edges + quantized stats.
    [[nodiscard]] std::uint64_t signature(
        const stm::StmStats& stats) const noexcept;

private:
    void edge(std::uint32_t thread, std::uint32_t event) noexcept;

    std::array<std::uint32_t, kCoverageBuckets> hits_{};
    /// Last event per thread, +1 (0 = thread not yet seen).
    std::array<std::uint32_t, kMaxScheduleThreads> prev_{};
};

/// The set of distinct behavior signatures an exploration has reached.
class CoverageMap {
public:
    /// True when `signature` was not seen before (and records it).
    bool insert(std::uint64_t signature) {
        return seen_.insert(signature).second;
    }

    [[nodiscard]] bool contains(std::uint64_t signature) const {
        return seen_.count(signature) != 0;
    }

    [[nodiscard]] std::size_t size() const noexcept { return seen_.size(); }

private:
    std::unordered_set<std::uint64_t> seen_;
};

}  // namespace tmb::sched
