#include "sched/coverage.hpp"

#include <bit>

#include "util/hash.hpp"

namespace tmb::sched {

namespace {

/// Compact event encoding: site * 16 + point. YieldPoint fits in 4 bits
/// (12 kinds) and YieldSite in the remaining range; a synthetic
/// "thread done" event sits one past the real vocabulary.
[[nodiscard]] std::uint32_t encode(stm::detail::YieldPoint point,
                                   stm::detail::YieldSite site) noexcept {
    return static_cast<std::uint32_t>(site) * 16u +
           static_cast<std::uint32_t>(point);
}

constexpr std::uint32_t kDoneEvent = stm::detail::kYieldSiteCount * 16u;

}  // namespace

std::uint32_t coverage_count_class(std::uint32_t count) noexcept {
    if (count <= 3) return count;  // 0..3 exact
    if (count <= 7) return 4;
    if (count <= 15) return 5;
    if (count <= 31) return 6;
    if (count <= 127) return 7;
    return 8;
}

std::uint32_t coverage_quantize(std::uint64_t value) noexcept {
    return static_cast<std::uint32_t>(std::bit_width(value));
}

void CoverageAccumulator::edge(std::uint32_t thread,
                               std::uint32_t event) noexcept {
    if (thread >= kMaxScheduleThreads) return;
    // Edge hash: previous event of the SAME thread → this event, salted by
    // the thread index so per-thread sequences stay distinguishable.
    const std::uint64_t key =
        (std::uint64_t{prev_[thread]} << 20) ^ (std::uint64_t{event} << 8) ^
        thread;
    hits_[util::mix64(key) & (kCoverageBuckets - 1)]++;
    prev_[thread] = event + 1;
}

void CoverageAccumulator::step(std::uint32_t thread,
                               stm::detail::YieldPoint point,
                               stm::detail::YieldSite site) noexcept {
    edge(thread, encode(point, site));
}

void CoverageAccumulator::finish(std::uint32_t thread) noexcept {
    edge(thread, kDoneEvent);
}

std::uint64_t CoverageAccumulator::signature(
    const stm::StmStats& stats) const noexcept {
    std::uint64_t h = 0xc0feefeedULL;
    for (std::uint32_t i = 0; i < kCoverageBuckets; ++i) {
        if (hits_[i] == 0) continue;
        h = util::mix64(h ^ ((std::uint64_t{i} << 8) |
                             coverage_count_class(hits_[i])));
    }
    // The quantized stats vector: order is part of the signature contract.
    const std::uint64_t counters[] = {
        stats.commits,          stats.aborts,
        stats.explicit_retries, stats.true_conflicts,
        stats.false_conflicts,  stats.clock_cas_failures,
        stats.policy_switches,  stats.table_resizes,
        stats.alloc_cache_hits, stats.alloc_cache_misses,
        stats.reclaim_shard_flushes,
    };
    for (const std::uint64_t c : counters) {
        h = util::mix64(h ^ coverage_quantize(c));
    }
    return h;
}

}  // namespace tmb::sched
