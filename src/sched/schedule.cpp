#include "sched/schedule.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tmb::sched {

std::uint32_t nearest_runnable(std::uint64_t runnable,
                               std::uint32_t want) noexcept {
    want &= 63;
    const std::uint64_t at_or_after = runnable >> want;
    if (at_or_after != 0) {
        return want + static_cast<std::uint32_t>(std::countr_zero(at_or_after));
    }
    return static_cast<std::uint32_t>(std::countr_zero(runnable));
}

char thread_to_char(std::uint32_t thread) noexcept {
    return thread < 10 ? static_cast<char>('0' + thread)
                       : static_cast<char>('a' + (thread - 10));
}

std::uint32_t char_to_thread(char c) {
    if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0');
    if (c >= 'a' && c <= 'z') return static_cast<std::uint32_t>(c - 'a' + 10);
    throw std::invalid_argument(std::string("schedule string: invalid pick '") +
                                c + "' (want [0-9a-z])");
}

namespace {

/// Deterministic baseline: thread (step mod live) in index order.
class RoundRobinSchedule final : public Schedule {
public:
    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        const auto live =
            static_cast<std::uint32_t>(std::popcount(runnable));
        std::uint32_t nth = static_cast<std::uint32_t>(step % live);
        std::uint64_t mask = runnable;
        while (nth--) mask &= mask - 1;
        return static_cast<std::uint32_t>(std::countr_zero(mask));
    }
};

/// Uniform over runnable threads.
class RandomSchedule final : public Schedule {
public:
    explicit RandomSchedule(std::uint64_t seed) : rng_(seed) {}

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t) override {
        const auto live =
            static_cast<std::uint64_t>(std::popcount(runnable));
        std::uint64_t nth = rng_.below(live);
        std::uint64_t mask = runnable;
        while (nth--) mask &= mask - 1;
        return static_cast<std::uint32_t>(std::countr_zero(mask));
    }

private:
    util::Xoshiro256 rng_;
};

/// PCT (probabilistic concurrency testing): random per-thread priorities,
/// d-1 random change points; each step runs the highest-priority runnable
/// thread. Adaptation for abort/retry STMs: an abort demotes the aborting
/// thread below everyone (in PCT terms, an abort is an involuntary yield) —
/// otherwise two transactions that keep aborting each other under a fixed
/// priority order would retry forever.
class PctSchedule final : public Schedule {
public:
    PctSchedule(std::uint64_t seed, std::uint32_t depth, std::uint64_t steps)
        : rng_(seed) {
        for (auto& p : priority_) p = 0;
        for (std::uint32_t d = 1; d < depth; ++d) {
            change_points_.push_back(rng_.below(std::max<std::uint64_t>(steps, 1)));
        }
        std::sort(change_points_.begin(), change_points_.end());
    }

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        while (change_index_ < change_points_.size() &&
               step >= change_points_[change_index_]) {
            ++change_index_;
            demote(top_runnable(runnable));
        }
        return top_runnable(runnable);
    }

    void observe(std::uint32_t thread, Event event) override {
        if (event == Event::kAbort) demote(thread);
    }

private:
    [[nodiscard]] std::uint32_t top_runnable(std::uint64_t runnable) {
        std::uint32_t best = static_cast<std::uint32_t>(std::countr_zero(runnable));
        for (std::uint64_t mask = runnable; mask != 0; mask &= mask - 1) {
            const auto t = static_cast<std::uint32_t>(std::countr_zero(mask));
            if (priority(t) > priority(best)) best = t;
        }
        return best;
    }

    /// Priorities are assigned lazily on first sight (the schedule does not
    /// know the thread count up front) — a fresh random rank well above the
    /// demotion floor.
    [[nodiscard]] std::int64_t priority(std::uint32_t t) {
        if (priority_[t] == 0) {
            priority_[t] = static_cast<std::int64_t>(rng_.uniform(1, 1u << 20));
        }
        return priority_[t];
    }

    void demote(std::uint32_t t) { priority_[t] = --floor_; }

    util::Xoshiro256 rng_;
    std::array<std::int64_t, 64> priority_{};  // 0 = unassigned
    std::int64_t floor_ = -1;                  // next demotion rank
    std::vector<std::uint64_t> change_points_;
    std::size_t change_index_ = 0;
};

/// Follows a recorded pick string; round-robin past its end.
class ReplaySchedule final : public Schedule {
public:
    explicit ReplaySchedule(std::string picks) : picks_(std::move(picks)) {
        for (const char c : picks_) (void)char_to_thread(c);  // validate early
    }

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        if (pos_ < picks_.size()) {
            const std::uint32_t want = char_to_thread(picks_[pos_++]);
            return nearest_runnable(runnable, want);
        }
        return fallback_.pick(runnable, step);
    }

private:
    std::string picks_;
    std::size_t pos_ = 0;
    RoundRobinSchedule fallback_;
};

ScheduleRegistry& registry() {
    static const bool bootstrapped = [] {
        auto& r = ScheduleRegistry::instance();
        r.add_default("rr", [](const config::Config&, std::uint64_t) {
            return std::make_unique<RoundRobinSchedule>();
        });
        r.add_default("random", [](const config::Config&, std::uint64_t seed) {
            return std::make_unique<RandomSchedule>(seed);
        });
        r.add_default("pct", [](const config::Config& cfg, std::uint64_t seed) {
            return std::make_unique<PctSchedule>(seed,
                                                 cfg.get_u32("depth", 3),
                                                 cfg.get_u64("steps", 256));
        });
        r.add_default("replay", [](const config::Config& cfg, std::uint64_t) {
            return std::make_unique<ReplaySchedule>(cfg.get("schedule", ""));
        });
        return true;
    }();
    (void)bootstrapped;
    return ScheduleRegistry::instance();
}

}  // namespace

std::vector<std::string> schedule_names() { return registry().names(); }

std::unique_ptr<Schedule> make_schedule(const config::Config& cfg,
                                        std::uint64_t seed) {
    // An explicit pick string wins: `--schedule=0120` alone means replay.
    const std::string kind =
        cfg.get("sched", cfg.has("schedule") ? "replay" : "random");
    return registry().create(kind, cfg, seed);
}

}  // namespace tmb::sched
