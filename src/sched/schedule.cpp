#include "sched/schedule.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tmb::sched {

std::uint32_t nearest_runnable(std::uint64_t runnable,
                               std::uint32_t want) noexcept {
    want &= 63;
    const std::uint64_t at_or_after = runnable >> want;
    if (at_or_after != 0) {
        return want + static_cast<std::uint32_t>(std::countr_zero(at_or_after));
    }
    return static_cast<std::uint32_t>(std::countr_zero(runnable));
}

char thread_to_char(std::uint32_t thread) noexcept {
    return thread < 10 ? static_cast<char>('0' + thread)
                       : static_cast<char>('a' + (thread - 10));
}

std::uint32_t char_to_thread(char c) {
    if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0');
    if (c >= 'a' && c <= 'z') return static_cast<std::uint32_t>(c - 'a' + 10);
    throw std::invalid_argument(std::string("schedule string: invalid pick '") +
                                c + "' (want [0-9a-z])");
}

namespace {

/// Deterministic baseline: thread (step mod live) in index order.
class RoundRobinSchedule final : public Schedule {
public:
    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        const auto live =
            static_cast<std::uint32_t>(std::popcount(runnable));
        std::uint32_t nth = static_cast<std::uint32_t>(step % live);
        std::uint64_t mask = runnable;
        while (nth--) mask &= mask - 1;
        return static_cast<std::uint32_t>(std::countr_zero(mask));
    }
};

/// Uniform over runnable threads.
class RandomSchedule final : public Schedule {
public:
    explicit RandomSchedule(std::uint64_t seed) : rng_(seed) {}

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t) override {
        const auto live =
            static_cast<std::uint64_t>(std::popcount(runnable));
        std::uint64_t nth = rng_.below(live);
        std::uint64_t mask = runnable;
        while (nth--) mask &= mask - 1;
        return static_cast<std::uint32_t>(std::countr_zero(mask));
    }

private:
    util::Xoshiro256 rng_;
};

/// PCT (probabilistic concurrency testing): random per-thread priorities,
/// d-1 random change points; each step runs the highest-priority runnable
/// thread. Adaptation for abort/retry STMs: an abort demotes the aborting
/// thread below everyone (in PCT terms, an abort is an involuntary yield) —
/// otherwise two transactions that keep aborting each other under a fixed
/// priority order would retry forever.
class PctSchedule final : public Schedule {
public:
    PctSchedule(std::uint64_t seed, std::uint32_t depth, std::uint64_t steps)
        : rng_(seed) {
        for (auto& p : priority_) p = 0;
        for (std::uint32_t d = 1; d < depth; ++d) {
            change_points_.push_back(rng_.below(std::max<std::uint64_t>(steps, 1)));
        }
        std::sort(change_points_.begin(), change_points_.end());
    }

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        while (change_index_ < change_points_.size() &&
               step >= change_points_[change_index_]) {
            ++change_index_;
            demote(top_runnable(runnable));
        }
        return top_runnable(runnable);
    }

    void observe(std::uint32_t thread, Event event) override {
        if (event == Event::kAbort) demote(thread);
    }

private:
    [[nodiscard]] std::uint32_t top_runnable(std::uint64_t runnable) {
        std::uint32_t best = static_cast<std::uint32_t>(std::countr_zero(runnable));
        for (std::uint64_t mask = runnable; mask != 0; mask &= mask - 1) {
            const auto t = static_cast<std::uint32_t>(std::countr_zero(mask));
            if (priority(t) > priority(best)) best = t;
        }
        return best;
    }

    /// Priorities are assigned lazily on first sight (the schedule does not
    /// know the thread count up front) — a fresh random rank well above the
    /// demotion floor.
    [[nodiscard]] std::int64_t priority(std::uint32_t t) {
        if (priority_[t] == 0) {
            priority_[t] = static_cast<std::int64_t>(rng_.uniform(1, 1u << 20));
        }
        return priority_[t];
    }

    void demote(std::uint32_t t) { priority_[t] = --floor_; }

    util::Xoshiro256 rng_;
    std::array<std::int64_t, 64> priority_{};  // 0 = unassigned
    std::int64_t floor_ = -1;                  // next demotion rank
    std::vector<std::uint64_t> change_points_;
    std::size_t change_index_ = 0;
};

/// Follows a recorded pick string; round-robin past its end.
class ReplaySchedule final : public Schedule {
public:
    explicit ReplaySchedule(std::string picks) : picks_(std::move(picks)) {
        for (const char c : picks_) (void)char_to_thread(c);  // validate early
    }

    std::uint32_t pick(std::uint64_t runnable, std::uint64_t step) override {
        if (pos_ < picks_.size()) {
            const std::uint32_t want = char_to_thread(picks_[pos_++]);
            return nearest_runnable(runnable, want);
        }
        return fallback_.pick(runnable, step);
    }

private:
    std::string picks_;
    std::size_t pos_ = 0;
    RoundRobinSchedule fallback_;
};

ScheduleRegistry& registry() {
    static const bool bootstrapped = [] {
        auto& r = ScheduleRegistry::instance();
        r.add_default("rr", [](const config::Config&, std::uint64_t) {
            return std::make_unique<RoundRobinSchedule>();
        });
        r.add_default("random", [](const config::Config&, std::uint64_t seed) {
            return std::make_unique<RandomSchedule>(seed);
        });
        r.add_default("pct", [](const config::Config& cfg, std::uint64_t seed) {
            return std::make_unique<PctSchedule>(seed,
                                                 cfg.get_u32("depth", 3),
                                                 cfg.get_u64("steps", 256));
        });
        r.add_default("replay", [](const config::Config& cfg, std::uint64_t) {
            return std::make_unique<ReplaySchedule>(cfg.get("schedule", ""));
        });
        return true;
    }();
    (void)bootstrapped;
    return ScheduleRegistry::instance();
}

}  // namespace

std::vector<std::string> schedule_names() { return registry().names(); }

// ---------------------------------------------------------------------------
// Mutation engine
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] char random_pick(std::uint32_t threads, util::Xoshiro256& rng) {
    return thread_to_char(static_cast<std::uint32_t>(rng.below(threads)));
}

/// Fresh random picks, length in [1, cap].
[[nodiscard]] std::string random_picks(std::uint32_t threads,
                                       std::uint64_t cap,
                                       util::Xoshiro256& rng) {
    std::string out;
    const std::uint64_t len = 1 + rng.below(std::max<std::uint64_t>(cap, 1));
    out.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) out.push_back(random_pick(threads, rng));
    return out;
}

}  // namespace

std::string_view to_string(Mutator m) noexcept {
    switch (m) {
        case Mutator::kFlip: return "flip";
        case Mutator::kTruncateExtend: return "truncate-extend";
        case Mutator::kSplice: return "splice";
        case Mutator::kShuffleRegion: return "shuffle-region";
        case Mutator::kCrossover: return "crossover";
    }
    return "unknown";
}

bool schedule_valid(const std::string& schedule,
                    std::uint32_t threads) noexcept {
    if (schedule.empty()) return false;
    for (const char c : schedule) {
        const bool digit = c >= '0' && c <= '9';
        const bool lower = c >= 'a' && c <= 'z';
        if (!digit && !lower) return false;
        const auto t = static_cast<std::uint32_t>(
            digit ? c - '0' : c - 'a' + 10);
        if (t >= threads) return false;
    }
    return true;
}

std::string mutate_schedule(const std::string& base, const std::string& partner,
                            std::uint32_t threads, Mutator m,
                            util::Xoshiro256& rng) {
    if (threads == 0 || threads > kMaxScheduleThreads) {
        throw std::invalid_argument("mutate_schedule: bad thread count");
    }
    // Degenerate parents: nothing to cut or splice — emit fresh picks.
    if (base.empty()) return random_picks(threads, 32, rng);
    const bool two_parent = m == Mutator::kSplice || m == Mutator::kCrossover;
    if (two_parent && partner.empty()) m = Mutator::kTruncateExtend;

    std::string out = base;
    switch (m) {
        case Mutator::kFlip: {
            const std::uint64_t flips =
                1 + rng.below(std::max<std::uint64_t>(out.size() / 8, 1));
            for (std::uint64_t i = 0; i < flips; ++i) {
                out[rng.below(out.size())] = random_pick(threads, rng);
            }
            break;
        }
        case Mutator::kTruncateExtend: {
            out.resize(1 + rng.below(out.size()));  // keep a nonempty prefix
            out += random_picks(threads, base.size() + 16, rng);
            break;
        }
        case Mutator::kSplice: {
            const std::size_t i = rng.below(out.size());
            const std::size_t j = rng.below(partner.size());
            out.resize(i);
            out.append(partner, j, partner.npos);
            if (out.empty()) out.push_back(random_pick(threads, rng));
            break;
        }
        case Mutator::kShuffleRegion: {
            // The PCT analogy: permuting one region reorders which thread
            // wins each contended step without disturbing the rest of the
            // run — a localized priority change.
            const std::size_t i = rng.below(out.size());
            const std::size_t len = std::min<std::size_t>(
                out.size() - i, 2 + rng.below(14));
            for (std::size_t k = len; k > 1; --k) {  // Fisher-Yates
                std::swap(out[i + k - 1], out[i + rng.below(k)]);
            }
            break;
        }
        case Mutator::kCrossover: {
            const std::size_t block = 1 + rng.below(8);
            out.clear();
            const std::size_t longest = std::max(base.size(), partner.size());
            for (std::size_t i = 0; i < longest; i += block) {
                const std::string& src = ((i / block) % 2 == 0) ? base : partner;
                if (i < src.size()) {
                    out.append(src, i, std::min(block, src.size() - i));
                }
            }
            if (out.empty()) out.push_back(random_pick(threads, rng));
            break;
        }
    }
    return out;
}

std::string mutate_schedule(const std::string& base, const std::string& partner,
                            std::uint32_t threads, util::Xoshiro256& rng) {
    const auto m = static_cast<Mutator>(rng.below(kMutatorCount));
    return mutate_schedule(base, partner, threads, m, rng);
}

std::string shrink_schedule(
    std::string schedule, const std::function<bool(const std::string&)>& keep,
    std::uint64_t max_probes) {
    std::uint64_t probes = 0;
    const auto probe = [&](const std::string& candidate) {
        ++probes;
        return keep(candidate);
    };
    if (schedule.empty() || !probe(schedule)) return schedule;

    std::size_t chunk = std::max<std::size_t>(schedule.size() / 2, 1);
    for (;;) {
        for (std::size_t i = 0; i < schedule.size();) {
            if (max_probes != 0 && probes >= max_probes) return schedule;
            std::string candidate = schedule;
            candidate.erase(i, chunk);
            if (candidate.size() < schedule.size() && probe(candidate)) {
                schedule = std::move(candidate);  // keep shrinking at i
            } else {
                i += chunk;
            }
        }
        if (chunk == 1) break;
        chunk /= 2;
    }
    return schedule;
}

std::unique_ptr<Schedule> make_schedule(const config::Config& cfg,
                                        std::uint64_t seed) {
    // An explicit pick string wins: `--schedule=0120` alone means replay.
    const std::string kind =
        cfg.get("sched", cfg.has("schedule") ? "replay" : "random");
    return registry().create(kind, cfg, seed);
}

}  // namespace tmb::sched
