#include "sched/corpus.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "util/hash.hpp"

namespace tmb::sched {

namespace {

[[nodiscard]] std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf, 16);
}

/// "sig-<16 hex>.sched" → the signature, or nullopt for any other name.
[[nodiscard]] std::optional<std::uint64_t> parse_claim(const std::string& name) {
    constexpr std::string_view prefix = "sig-";
    constexpr std::string_view suffix = ".sched";
    if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
    if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
    if (name.compare(prefix.size() + 16, suffix.size(), suffix) != 0) {
        return std::nullopt;
    }
    const std::string hex = name.substr(prefix.size(), 16);
    char* end = nullptr;
    const std::uint64_t sig = std::strtoull(hex.c_str(), &end, 16);
    if (end != hex.c_str() + 16) return std::nullopt;
    return sig;
}

/// Base-36 pick strings only; anything else in a shared directory is
/// another tool's garbage and is skipped.
[[nodiscard]] bool plausible_schedule(const std::string& s) {
    if (s.empty() || s.size() > (std::size_t{1} << 20)) return false;
    return std::all_of(s.begin(), s.end(), [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z');
    });
}

}  // namespace

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty()) return;
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::runtime_error("corpus: cannot create directory " + dir_);
    }
}

bool Corpus::observe(std::uint64_t signature) { return map_.insert(signature); }

bool Corpus::seen(std::uint64_t signature) const {
    return map_.contains(signature);
}

void Corpus::add(std::string schedule, std::uint64_t signature) {
    CorpusEntry e;
    e.schedule = std::move(schedule);
    e.signature = signature;
    entries_.push_back(std::move(e));
}

std::size_t Corpus::select(util::Xoshiro256& rng) const {
    if (entries_.empty()) {
        throw std::logic_error("corpus: select() on an empty corpus");
    }
    const auto weight = [](const CorpusEntry& e) {
        return 1 + std::min<std::uint64_t>(e.yield * 4, 63);
    };
    std::uint64_t total = 0;
    for (const CorpusEntry& e : entries_) total += weight(e);
    std::uint64_t r = rng.below(total);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const std::uint64_t w = weight(entries_[i]);
        if (r < w) return i;
        r -= w;
    }
    return entries_.size() - 1;  // unreachable; float-free safety
}

std::size_t Corpus::sync() {
    if (dir_.empty()) return 0;

    // Publish: one O_CREAT|O_EXCL claim per not-yet-published entry. Losing
    // the claim race just means another worker already owns that signature.
    for (; published_ < entries_.size(); ++published_) {
        const CorpusEntry& e = entries_[published_];
        const std::string path = dir_ + "/sig-" + hex16(e.signature) + ".sched";
        const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
        if (fd < 0) continue;  // EEXIST: claimed elsewhere (or unwritable)
        const std::string line = e.schedule + "\n";
        (void)!::write(fd, line.data(), line.size());
        ::close(fd);
    }

    // Import, in sorted name order so single-job syncs stay deterministic.
    std::vector<std::string> names;
    if (DIR* d = ::opendir(dir_.c_str())) {
        while (const dirent* ent = ::readdir(d)) names.emplace_back(ent->d_name);
        ::closedir(d);
    }
    std::sort(names.begin(), names.end());

    std::size_t imported = 0;
    for (const std::string& name : names) {
        const auto sig = parse_claim(name);
        if (!sig || seen(*sig)) continue;
        std::ifstream in(dir_ + "/" + name);
        std::string schedule;
        if (!std::getline(in, schedule) || !plausible_schedule(schedule)) {
            continue;
        }
        (void)observe(*sig);
        add(std::move(schedule), *sig);
        ++published_;  // imported entries are on disk by definition
        ++imported;
        // Keep imports adjacent to published_'s tail: add() appended at the
        // back, which is exactly entries_[published_ - 1] here because
        // publish() above drained the unpublished range first.
    }
    return imported;
}

// ---------------------------------------------------------------------------
// The guided fuzz loop
// ---------------------------------------------------------------------------

FuzzResult fuzz_explore(const HarnessConfig& cfg, const FuzzOptions& opts,
                        Corpus& corpus) {
    HarnessConfig run_cfg = cfg;
    if (opts.step_limit != 0) {
        run_cfg.step_limit = std::min(cfg.step_limit, opts.step_limit);
    }
    const auto programs = generate_programs(run_cfg);
    FuzzResult out;
    util::Xoshiro256 rng(opts.seed);

    const auto replay = [&](const std::string& picks) {
        config::Config sc;
        sc.set("sched", "replay");
        sc.set("schedule", picks);
        const auto sch = make_schedule(sc, 0);
        return run_schedule(run_cfg, programs, *sch);
    };

    // Completed runs face the full serializability oracle. Cancelled runs
    // (step cap hit — e.g. a livelocking mutant) face the prefix oracle:
    // whatever committed before the cap must form a consistent history.
    const auto oracle = [&](const RunResult& run) {
        const auto error =
            run.cancelled ? check_prefix_consistent(run_cfg, programs, run)
                          : check_serializable(run_cfg, programs, run);
        if (error) {
            Violation v;
            v.schedule = run.schedule;
            v.repro = repro_line(cfg, run.schedule);
            v.message = *error + "\n  repro: " + v.repro;
            out.violations.push_back(std::move(v));
        }
    };

    // Retains run.schedule (the recorded, replayable pick string) for its
    // new signature, first ddmin-shrinking it to the shortest string that
    // still reproduces the signature. Shrink probes are full oracle-checked
    // runs and count against the budget; signatures they stumble into are
    // observed (they count as reached) but not retained.
    const auto retain = [&](const RunResult& run) {
        std::string kept = run.schedule;
        if (opts.shrink && kept.size() > 1 && out.runs < opts.budget) {
            const std::uint64_t cap =
                std::min(opts.shrink_probes, opts.budget - out.runs);
            const auto same_signature = [&](const std::string& cand) {
                const RunResult probe = replay(cand);
                ++out.runs;
                out.stats.merge(probe.stats);
                out.sites_seen |= probe.sites_seen;
                oracle(probe);
                (void)corpus.observe(probe.signature);
                return probe.signature == run.signature;
            };
            kept = shrink_schedule(std::move(kept), same_signature, cap);
        }
        corpus.add(std::move(kept), run.signature);
    };

    // Seed phase: a few random schedules establish baseline coverage (and
    // give the mutators parents to work from).
    config::Config random_cfg;
    random_cfg.set("sched", "random");
    for (std::uint64_t i = 0; i < opts.init && out.runs < opts.budget; ++i) {
        const auto sch =
            make_schedule(random_cfg, util::mix64(opts.seed ^ (i + 1)));
        const RunResult run = run_schedule(run_cfg, programs, *sch);
        ++out.runs;
        out.stats.merge(run.stats);
        out.sites_seen |= run.sites_seen;
        oracle(run);
        if (opts.stop_at_first && !out.violations.empty()) return out;
        if (corpus.observe(run.signature)) retain(run);
    }

    constexpr std::size_t kNoBase = static_cast<std::size_t>(-1);
    std::uint64_t since_sync = 0;
    std::uint64_t since_kill = 0;
    while (out.runs < opts.budget &&
           !(opts.stop_at_first && !out.violations.empty())) {
        // Exploration mix: 1 round in 8 runs a fresh full-length random
        // schedule instead of a mutant. Pure corpus exploitation can
        // collapse into a low-diversity basin when signatures carry no
        // gradient toward a behavior; the mix keeps feeding the corpus
        // interleavings from the whole space, AFL-havoc style.
        std::size_t base_idx = kNoBase;
        RunResult run;
        if (corpus.empty() || rng.below(8) == 0) {
            const auto sch = make_schedule(random_cfg, rng());
            run = run_schedule(run_cfg, programs, *sch);
        } else {
            base_idx = corpus.select(rng);
            ++corpus.entry(base_idx).trials;
            const std::string mutant =
                mutate_schedule(corpus.entry(base_idx).schedule,
                                corpus.entry(corpus.select(rng)).schedule,
                                cfg.threads, rng);
            run = replay(mutant);
        }
        ++out.runs;
        ++since_sync;
        out.stats.merge(run.stats);
        out.sites_seen |= run.sites_seen;
        oracle(run);
        if (opts.stop_at_first && !out.violations.empty()) return out;
        if (corpus.observe(run.signature)) {
            ++out.new_coverage_mutants;
            if (base_idx != kNoBase) ++corpus.entry(base_idx).yield;
            retain(run);
        }

        // Kill-point cadence: replay the schedule we just ran, cancelled at
        // a random step, and demand a prefix-consistent commit history.
        // (Counter-based, not out.runs % N: shrink probes also advance
        // out.runs, so exact multiples would align only by luck.)
        ++since_kill;
        if (opts.kill_every != 0 && since_kill >= opts.kill_every &&
            run.steps > 0 && out.runs < opts.budget) {
            since_kill = 0;
            const std::uint64_t kill = 1 + rng.below(run.steps);
            ++out.runs;
            ++out.kill_checks;
            if (const auto error =
                    check_kill_point(run_cfg, programs, run.schedule, kill)) {
                Violation v;
                v.schedule = run.schedule;
                v.repro = repro_line(cfg, run.schedule) +
                          " --kill_step=" + std::to_string(kill);
                v.message = "kill-point (step " + std::to_string(kill) +
                            "): " + *error + "\n  repro: " + v.repro;
                out.violations.push_back(std::move(v));
            }
        }

        if (!corpus.dir().empty() && opts.sync_every != 0 &&
            since_sync >= opts.sync_every) {
            since_sync = 0;
            (void)corpus.sync();
        }
    }
    if (!corpus.dir().empty()) (void)corpus.sync();
    return out;
}

}  // namespace tmb::sched
