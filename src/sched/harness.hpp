// harness.hpp — deterministic schedule exploration with a serializability
// oracle.
//
// The paper's backends claim serializability; PR 2's engine could only
// check coarse invariants under whatever interleavings the OS happened to
// produce. This harness makes interleavings a *first-class input*: N
// virtual threads run real transactions over a real registry-selected STM
// backend, but control transfers only at the runtime's yield points
// (stm/sched_hook.hpp) and only to the thread a Schedule object names. One
// OS thread executes at a time (a semaphore turnstile), so a run is a pure
// function of (workload config, programs, pick sequence) — every explored
// run collapses to a compact base-36 string that replays bit-for-bit, and
// every failure prints a copy-pasteable `sched_explorer` repro line.
//
// Two oracles sit on top:
//
//   * check_serializable — records each committed transaction's read/write
//     sets and the commit order, then replays the transaction *logic*
//     serially in commit order against a fresh array: every writer's reads
//     must match the serial state at its commit position, every read-only
//     transaction's reads must match some serial state between its begin
//     and its commit, and the final memory must be bit-identical. Commit
//     (-completion) order is a valid serialization order for all four
//     backends because commit executes as one scheduler step (see
//     sched_hook.hpp).
//
//   * run_differential — replays one schedule seed across every
//     backend×table pair and asserts identical final state (the workload
//     must be commutative: conflict-induced retries legitimately reorder
//     commits between backends) plus the paper's conflict-count direction:
//     tagged tables report zero false conflicts, tagless at least as many.
//
// Mode `dyn` widens the first oracle with a *lifetime* check: each slot
// holds a pointer to a heap node allocated with tx_alloc and replaced (new
// node in, old node tx_free'd) on every write, and the runtime yields at
// its alloc/free/reclaim points too. A ReclaimObserver tracks every block
// the reclaimer releases; a virtual thread dereferencing a released node —
// legal for a doomed reader under correct epoch reclamation, fatal under a
// broken one — or the reclaimer releasing a block twice is reported in
// RunResult::lifetime_error instead of being undefined behavior, and
// check_serializable reports it before anything else.
//
// Determinism notes: the shared words live in a process-static 64-byte-
// aligned arena and the harness pins hash=shift-mask, so which slots alias
// in the ownership table depends only on slot *distances* — recorded
// schedules replay identically across processes and ASLR. Contention
// management is pinned to `none` (no sleeps, no jitter).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "sched/schedule.hpp"
#include "stm/stm.hpp"

namespace tmb::sched {

/// Largest shared-array size (one 64-byte block per slot in the arena — a
/// 256 KiB process-static array). Raised from 64 so scheduled runs can
/// express footprints whose birthday term (C-1)W²/2N meaningfully spans
/// table sizes (slot count must exceed the tables under test for aliasing
/// to exist at all).
inline constexpr std::uint32_t kMaxSlots = 4096;

/// One exploration subject: workload shape + STM selection. Parsed from the
/// same `--key=value` vocabulary as every other driver.
struct HarnessConfig {
    // --- STM selection (forwarded to stm::Stm::create) ---
    std::string backend = "table";  ///< tl2 | table | atomic | adaptive
    std::string table = "tagless";  ///< organization, table/adaptive backends
    std::uint64_t entries = 16;     ///< ownership-table slots (small ⇒ aliasing)
    bool commit_time_locks = false;
    std::string clock;              ///< tl2 clock scheme (gv1|gv5; "" = engine default)
    // --- adaptive backend only (epoch_ms stays 0: determinism) ---
    std::string engine;             ///< wrapped engine ("" = engine default)
    std::string policy;             ///< off | auto | cycle ("" = engine default)
    std::uint64_t epoch = 0;        ///< commits per epoch (0 = engine default)
    std::uint64_t max_entries = 0;  ///< resize growth cap (0 = engine default)
    // --- workload shape ---
    std::uint32_t threads = 3;         ///< virtual threads (≤ 36)
    std::uint32_t txs_per_thread = 3;  ///< transactions each runs, in order
    std::uint32_t ops_per_tx = 4;      ///< accesses per transaction
    std::uint32_t slots = 6;           ///< shared words (one block each)
    double write_fraction = 0.6;       ///< P(access is a write), writer txs
    double read_only_fraction = 0.25;  ///< P(tx is read-only)
    /// Commutative mode ("incr"): every write is `read + constant`, so the
    /// final state is independent of commit order — required by the
    /// differential oracle. Default ("acc") writes a hash of everything the
    /// transaction has read, making the final state maximally sensitive to
    /// serialization errors — preferred for the serializability oracle.
    bool commutative = false;
    /// Dynamic-memory mode ("dyn"): every slot holds a tx_alloc'd heap node
    /// and writes replace the node (tx_alloc + tx_free) instead of the
    /// value, driving the allocator's speculative-rollback and epoch-
    /// reclamation machinery through every explored interleaving. Values
    /// follow the acc rule (non-commutative), and run_schedule additionally
    /// arms the lifetime oracle (RunResult::lifetime_error).
    bool dynamic = false;
    std::uint64_t workload_seed = 1;
    /// Per-context free-block cache capacity forwarded to the runtime
    /// (stm_spec). -1 = engine default; 0 = cache off (per-commit
    /// retire/poll cadence) — the cache-on/cache-off differential axis the
    /// dyn fuzz batches sweep.
    std::int64_t cache_blocks = -1;
    /// Scheduler steps before the run is cancelled (livelocked replays
    /// under a mismatched config would otherwise never terminate).
    std::uint64_t step_limit = 1u << 20;
};

/// Parses harness keys: backend, table, entries, commit_time_locks, clock,
/// engine, policy, epoch, max_entries, threads, txs, ops, slots, wfrac,
/// rofrac, mode (acc|incr|dyn), wseed, cache_blocks, step_limit.
[[nodiscard]] HarnessConfig harness_config_from(const config::Config& cfg);

/// The Config handed to stm::Stm::create for this harness config —
/// includes the determinism pins (hash=shift-mask, contention=none).
[[nodiscard]] config::Config stm_spec(const HarnessConfig& cfg);

/// `--key=value` flags reproducing `cfg` on the sched_explorer command
/// line (everything except the schedule string).
[[nodiscard]] std::string repro_flags(const HarnessConfig& cfg);

/// Full repro command for one explored run.
[[nodiscard]] std::string repro_line(const HarnessConfig& cfg,
                                     const std::string& schedule);

/// One transactional access of a generated program.
struct TxOp {
    std::uint32_t slot = 0;
    bool is_write = false;
};

/// One transaction's access list (executed atomically, retried on
/// conflict). A program with no writes is a read-only transaction.
struct TxProgram {
    std::vector<TxOp> ops;

    [[nodiscard]] bool read_only() const noexcept {
        for (const TxOp& op : ops) {
            if (op.is_write) return false;
        }
        return true;
    }
};

/// programs[t][k] = thread t's k-th transaction, generated deterministically
/// from cfg.workload_seed.
[[nodiscard]] std::vector<std::vector<TxProgram>> generate_programs(
    const HarnessConfig& cfg);

/// One observed transactional access (slot index + value read or written).
struct SlotValue {
    std::uint32_t slot = 0;
    std::uint64_t value = 0;
};

/// What one committed transaction did, in commit order.
struct CommitRecord {
    std::uint32_t thread = 0;
    std::uint32_t tx_index = 0;
    /// Commits completed when the *successful* attempt began — the lower
    /// bound of the window a read-only transaction may serialize into.
    std::uint64_t begin_commits = 0;
    std::vector<SlotValue> reads;
    std::vector<SlotValue> writes;
};

/// Outcome of one scheduled run.
struct RunResult {
    std::string schedule;  ///< recorded picks (replayable)
    std::uint64_t steps = 0;
    bool cancelled = false;  ///< step_limit exhausted; state is partial
    std::uint64_t state_hash = 0;
    std::vector<std::uint64_t> final_state;  ///< slot values at quiescence
    std::vector<CommitRecord> commit_log;    ///< commit order
    stm::StmStats stats;
    /// The run's 64-bit behavior signature (sched/coverage.hpp): AFL-style
    /// bucketed per-thread yield-event edges + quantized stats. A pure
    /// function of the replayed execution on a fresh engine, so identical
    /// runs carry identical signatures.
    std::uint64_t signature = 0;
    /// Bitmask of YieldSite values the run parked at (bit s set ⇔ some
    /// granted step yielded from site s). Coarser than the signature, but
    /// directly answers "did this campaign ever reach site X" — the
    /// reachability assertion the decision-point sites exist for.
    std::uint32_t sites_seen = 0;
    /// Lifetime-oracle verdict (dyn mode only): a use of a reclaimed block,
    /// a double reclamation, or an unbalanced allocation ledger at the end
    /// of the run. nullopt when clean (always nullopt outside dyn mode).
    std::optional<std::string> lifetime_error;
};

/// Runs `programs` under `schedule` over a fresh Stm built from `cfg`.
/// Deterministic: identical inputs give identical RunResults.
[[nodiscard]] RunResult run_schedule(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, Schedule& schedule);

/// Same, over a caller-owned Stm — the engine's state (ownership metadata
/// must be quiescent, but an adaptive backend's mounted engine shape and
/// cumulative instance counters persist) carries across calls. This is how
/// the phase-change experiments measure the adaptive runtime *across* runs:
/// the shape it adapted to in one run is the shape the next run starts on.
/// `cfg.txs_per_thread` must equal each thread's program count, and
/// `result.stats`'s instance-block counters are engine-lifetime totals, not
/// per-run deltas.
[[nodiscard]] RunResult run_schedule(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, Schedule& schedule,
    stm::Stm& tm);

/// The serializability oracle: nullopt when the run is equivalent to the
/// serial execution of its commit log in commit order; otherwise a
/// description of the first divergence. A cancelled run is reported as a
/// violation (step_limit exhausted), and a dyn-mode lifetime violation
/// (run.lifetime_error) is reported before any serializability analysis.
[[nodiscard]] std::optional<std::string> check_serializable(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, const RunResult& run);

/// The crash/kill-consistency oracle's core: like check_serializable, but
/// accepts a *partial* run (a kill-point cancellation): the commit log may
/// hold any per-thread prefix of the programs, and a cancelled run is not
/// itself a violation. What must still hold: the log is a gap-free prefix
/// per thread, the serial replay of the log in commit order reproduces
/// every recorded read/write, read-only windows close, the rolled-back
/// final memory equals the serial replay of exactly the committed
/// transactions, and (dyn mode) the lifetime ledger balances.
[[nodiscard]] std::optional<std::string> check_prefix_consistent(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, const RunResult& run);

/// Kill-point oracle: replays `schedule` with the step budget cut to
/// `kill_step` (the "crash"), then asserts the post-crash state is a
/// prefix-consistent commit history. A schedule that finishes before the
/// kill step is checked with the full serializability oracle instead.
[[nodiscard]] std::optional<std::string> check_kill_point(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const std::string& schedule, std::uint64_t kill_step);

/// A failing schedule plus everything needed to reproduce it.
struct Violation {
    std::string message;   ///< oracle description + repro line
    std::string schedule;  ///< recorded pick string
    std::string repro;     ///< copy-pasteable sched_explorer command
};

/// Aggregate of an exploration batch.
struct ExploreResult {
    std::uint64_t runs = 0;
    std::vector<Violation> violations;
    stm::StmStats stats;  ///< merged over all runs
};

/// Explores `count` schedules built from `sched_cfg` (keys sched=, depth=,
/// steps=) with per-run seeds derived from `base_seed`, oracle-checking
/// every run.
[[nodiscard]] ExploreResult explore(const HarnessConfig& cfg,
                                    const config::Config& sched_cfg,
                                    std::uint64_t count,
                                    std::uint64_t base_seed);

/// One backend×table combination of the differential sweep.
struct BackendPair {
    std::string backend;
    std::string table;  ///< empty when the backend has no table choice
    bool commit_time_locks = false;

    [[nodiscard]] std::string label() const;
};

/// Every built-in pair: tl2, table×{tagless,tagged}×{eager,lazy}, atomic.
[[nodiscard]] std::vector<BackendPair> default_backend_pairs();

/// The differential oracle: runs one schedule seed across `pairs` (all
/// sharing cfg's workload, which must be commutative), asserting
/// serializability per run, identical final state across runs, and the
/// tagged-zero / tagless≥tagged false-conflict direction. Returns nullopt
/// on agreement. When `runs_out` is non-null it receives one RunResult per
/// pair (in order) for inspection.
[[nodiscard]] std::optional<std::string> run_differential(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs,
    const std::vector<BackendPair>& pairs, const config::Config& sched_cfg,
    std::uint64_t seed, std::vector<RunResult>* runs_out = nullptr);

/// Greedily shrinks a failing schedule string (ddmin-style chunk removal)
/// while check_serializable still reports a violation. Returns the input
/// unchanged when it does not fail.
[[nodiscard]] std::string minimize_schedule(
    const HarnessConfig& cfg,
    const std::vector<std::vector<TxProgram>>& programs, std::string schedule);

}  // namespace tmb::sched
