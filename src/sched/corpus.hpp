// corpus.hpp — the guided-fuzzing corpus and the fuzz loop itself.
//
// A Corpus holds the schedule strings that each first reached a distinct
// behavior signature (sched/coverage.hpp), ranked by *yield*: how many
// further distinct signatures that entry's mutants went on to reach. The
// fuzz loop (fuzz_explore) seeds the corpus with a handful of random runs,
// then repeatedly picks a base entry (yield-weighted), mutates its
// schedule string (sched/schedule.hpp mutators), replays the mutant under
// the full serializability oracle, and keeps it iff its signature is new —
// optionally ddmin-shrinking the kept string to the shortest prefix-free
// form that still reproduces the signature.
//
// Multi-process sharing: when a corpus directory is set, each entry is
// published as `sig-<16-hex-signature>.sched` claimed with
// open(O_CREAT|O_EXCL) — exactly one worker wins each signature's file,
// the rest skip it — and sync() imports files other workers published.
// Workers never lock anything; the claim is the filename itself.
//
// Determinism: with a single job, everything — corpus order, selection,
// mutation — is a pure function of FuzzOptions::seed (test-asserted).
// With multiple jobs the *set* of signatures found is stable in practice
// but the corpus contents depend on which worker wins each claim race;
// only single-job runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/coverage.hpp"
#include "sched/harness.hpp"
#include "util/rng.hpp"

namespace tmb::sched {

/// One corpus member: the first schedule observed to reach `signature`.
struct CorpusEntry {
    std::string schedule;
    std::uint64_t signature = 0;
    std::uint64_t yield = 0;   ///< new signatures first reached by its mutants
    std::uint64_t trials = 0;  ///< times selected as a mutation base
};

/// The signature-deduplicated schedule corpus. Entries keep insertion
/// order (determinism); the CoverageMap inside also tracks signatures
/// observed but not retained (duplicates, imports).
class Corpus {
public:
    /// `dir` empty ⇒ in-memory only; otherwise sync() publishes/imports
    /// entries through that directory (created if missing).
    explicit Corpus(std::string dir = "");

    /// Registers a signature observation; true when it was unseen.
    bool observe(std::uint64_t signature);
    [[nodiscard]] bool seen(std::uint64_t signature) const;

    /// Retains `schedule` as the representative of `signature`. Call only
    /// after observe(signature) returned true.
    void add(std::string schedule, std::uint64_t signature);

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    [[nodiscard]] const CorpusEntry& entry(std::size_t i) const {
        return entries_[i];
    }
    [[nodiscard]] CorpusEntry& entry(std::size_t i) { return entries_[i]; }
    [[nodiscard]] std::uint64_t distinct_signatures() const noexcept {
        return map_.size();
    }

    /// Yield-weighted deterministic selection (weight 1 + min(4·yield, 63)).
    /// Requires a non-empty corpus.
    [[nodiscard]] std::size_t select(util::Xoshiro256& rng) const;

    /// Publishes unpublished entries (O_CREAT|O_EXCL claims) and imports
    /// files other workers published, in sorted filename order. Returns the
    /// number of imported entries; no-op (0) without a directory.
    std::size_t sync();

    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

private:
    std::string dir_;
    CoverageMap map_;
    std::vector<CorpusEntry> entries_;
    std::size_t published_ = 0;  ///< entries_[0..published_) are on disk
};

/// Knobs of one guided-fuzzing campaign.
struct FuzzOptions {
    std::uint64_t budget = 10000;  ///< total harness runs (mutants + shrink
                                   ///  probes + kill-point replays)
    std::uint64_t seed = 1;        ///< drives everything (see header note)
    std::uint64_t init = 32;       ///< random seeding runs before mutation
    std::uint64_t sync_every = 512;  ///< runs between corpus-dir syncs
    bool shrink = true;              ///< ddmin-shrink retained entries
    std::uint64_t shrink_probes = 24;  ///< probe cap per retained entry
    std::uint64_t kill_every = 0;  ///< every N runs, one kill-point check
                                   ///  at a random step (0 = off)
    /// Step cap per fuzz run (0 = inherit cfg.step_limit). Mutants can land
    /// on livelocking interleavings — two threads perpetually abort-retrying
    /// each other under a periodic tail — which are legal behaviors (the STM
    /// guarantees no such liveness property under adversarial scheduling)
    /// but would burn cfg's full default budget (2^20 steps) per run. The
    /// fuzzer cancels them early and prefix-checks instead.
    std::uint64_t step_limit = std::uint64_t{1} << 14;
    /// Stop as soon as any violation is recorded (FuzzResult::runs then
    /// reports how many runs the campaign needed to find it).
    bool stop_at_first = false;
};

/// Aggregate of one fuzz_explore campaign.
struct FuzzResult {
    std::uint64_t runs = 0;         ///< harness runs executed (= budget spent)
    std::uint64_t kill_checks = 0;  ///< kill-point oracle invocations
    std::uint64_t new_coverage_mutants = 0;  ///< mutants with a new signature
    std::vector<Violation> violations;
    stm::StmStats stats;  ///< merged over all runs
    /// OR of every run's RunResult::sites_seen — which YieldSites the whole
    /// campaign reached (reachability assertions for new decision sites).
    std::uint32_t sites_seen = 0;
};

/// Coverage-guided schedule fuzzing over `cfg`'s workload. The caller owns
/// `corpus` (pre-seeded or empty; pass one constructed with a directory to
/// share across processes). Every run is oracle-checked; violations carry
/// repro lines like explore()'s.
[[nodiscard]] FuzzResult fuzz_explore(const HarnessConfig& cfg,
                                      const FuzzOptions& opts, Corpus& corpus);

}  // namespace tmb::sched
