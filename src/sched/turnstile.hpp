// turnstile.hpp — the cooperative one-thread-at-a-time baton shared by the
// schedule-exploration harness (sched/harness.cpp) and the deterministic
// service runner (svc/sched_service.cpp).
//
// Exactly one party — the scheduler or one worker — holds the baton at any
// moment. Semaphore handoff gives the happens-before edges that make the
// workers' plain accesses to shared run state race-free (and TSan-clean)
// despite no further locking. Workers park inside a SchedulerHook yield;
// the scheduler runs one worker per grant(), from its parked yield point to
// its next one (or to completion).
//
// Cancellation protocol: cancel() sets a flag, then the scheduler grants
// every still-runnable worker exactly one wake-up; each throws
// HarnessCancelled out of its next yield and unwinds. A yield reached while
// *unwinding* (cancel already set on entry) throws immediately without
// parking, so no worker can ever park with nobody left to grant it.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <semaphore>
#include <vector>

#include "stm/sched_hook.hpp"

namespace tmb::sched {

/// Thrown into a virtual thread at its next yield point when the run is
/// cancelled (step budget exhausted). Never escapes the run driver.
struct HarnessCancelled {};

/// Semaphore turnstile: see header comment for the protocol.
class Turnstile {
public:
    explicit Turnstile(std::uint32_t n) : workers_(n) {}

    // --- worker side -----------------------------------------------------

    /// Yields from a worker's hook: parks the worker and wakes the
    /// scheduler. Throws HarnessCancelled when the run was cancelled while
    /// parked — or already cancelled on entry (see header).
    void worker_yield(std::uint32_t id, stm::detail::YieldPoint point,
                      stm::detail::YieldSite site) {
        if (cancel_.load(std::memory_order_relaxed)) throw HarnessCancelled{};
        workers_[id].last_point = point;
        workers_[id].last_site = site;
        scheduler_go_.release();
        workers_[id].go.acquire();
        if (cancel_.load(std::memory_order_relaxed)) throw HarnessCancelled{};
    }

    /// Marks a worker done (normally or with `error`) and wakes the
    /// scheduler one last time.
    void worker_finish(std::uint32_t id, std::exception_ptr error) {
        workers_[id].error = std::move(error);
        workers_[id].finished = true;
        scheduler_go_.release();
    }

    // --- scheduler side --------------------------------------------------

    /// Waits until all n workers have reached their first yield point (each
    /// release is one worker parking — or finishing instantly).
    void await_parked(std::uint32_t n) {
        for (std::uint32_t i = 0; i < n; ++i) scheduler_go_.acquire();
    }

    /// Runs worker `id` for one step: from its parked yield point to its
    /// next one (or to completion).
    void grant(std::uint32_t id) {
        workers_[id].go.release();
        scheduler_go_.acquire();
    }

    void cancel() { cancel_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool finished(std::uint32_t id) const {
        return workers_[id].finished;
    }
    [[nodiscard]] stm::detail::YieldPoint last_point(std::uint32_t id) const {
        return workers_[id].last_point;
    }
    [[nodiscard]] stm::detail::YieldSite last_site(std::uint32_t id) const {
        return workers_[id].last_site;
    }
    [[nodiscard]] std::exception_ptr error(std::uint32_t id) const {
        return workers_[id].error;
    }

private:
    struct Worker {
        std::binary_semaphore go{0};
        stm::detail::YieldPoint last_point = stm::detail::YieldPoint::kTxBegin;
        stm::detail::YieldSite last_site = stm::detail::YieldSite::kRunBegin;
        bool finished = false;
        std::exception_ptr error;
    };

    std::vector<Worker> workers_;
    /// Counting, not binary: during startup all N workers release once
    /// each (racing freely to their first yield point) before await_parked
    /// drains them — a binary semaphore's max would be exceeded (UB).
    std::counting_semaphore<64> scheduler_go_{0};
    std::atomic<bool> cancel_{false};
};

/// The per-worker SchedulerHook: forwards every runtime yield point into
/// the turnstile.
class WorkerHook final : public stm::detail::SchedulerHook {
public:
    WorkerHook(Turnstile& ts, std::uint32_t id) : ts_(ts), id_(id) {}

    void yield(stm::detail::YieldPoint point,
               stm::detail::YieldSite site) override {
        ts_.worker_yield(id_, point, site);
    }

private:
    Turnstile& ts_;
    std::uint32_t id_;
};

}  // namespace tmb::sched
