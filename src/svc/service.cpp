#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "stm/sched_hook.hpp"

namespace tmb::svc {

namespace {

using stm::detail::scheduler_yield;
using stm::detail::YieldPoint;
using stm::detail::YieldSite;

[[nodiscard]] std::uint64_t parse_u64(const std::string& s,
                                      const std::string& what) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
        throw std::invalid_argument("svc: bad number in " + what + ": '" + s +
                                    "'");
    }
    return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

SvcFault svc_fault_from(const std::string& spec) {
    SvcFault out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty() || tok == "none") continue;
        const std::size_t colon = tok.find(':');
        const std::string name = tok.substr(0, colon);
        const std::string arg =
            colon == std::string::npos ? "" : tok.substr(colon + 1);
        if (name == "stall_dispatcher") {
            out.stall_dispatcher_ms =
                static_cast<std::uint32_t>(parse_u64(arg, "stall_dispatcher"));
        } else if (name == "drop_response") {
            out.drop_response = true;
        } else if (name == "slow_shard") {
            out.slow_shard =
                static_cast<std::int64_t>(parse_u64(arg, "slow_shard"));
        } else if (name == "abort_attempts") {
            out.abort_attempts =
                static_cast<std::uint32_t>(parse_u64(arg, "abort_attempts"));
        } else {
            throw std::invalid_argument(
                "svc_fault: unknown fault '" + name +
                "' (known: stall_dispatcher:<ms>, drop_response, "
                "slow_shard:<n>, abort_attempts:<n>)");
        }
    }
    return out;
}

std::string to_string(const SvcFault& fault) {
    std::string out;
    const auto append = [&](const std::string& tok) {
        if (!out.empty()) out += ",";
        out += tok;
    };
    if (fault.stall_dispatcher_ms != 0) {
        append("stall_dispatcher:" + std::to_string(fault.stall_dispatcher_ms));
    }
    if (fault.drop_response) append("drop_response");
    if (fault.slow_shard >= 0) {
        append("slow_shard:" + std::to_string(fault.slow_shard));
    }
    if (fault.abort_attempts != 0) {
        append("abort_attempts:" + std::to_string(fault.abort_attempts));
    }
    return out.empty() ? "none" : out;
}

SvcConfig svc_config_from(const config::Config& cfg) {
    SvcConfig out;
    out.clients = cfg.get_u32("clients", out.clients);
    out.dispatchers = cfg.get_u32("dispatchers", out.dispatchers);
    out.shards = cfg.get_u32("shards", out.shards);
    out.queue_depth = cfg.get_u32("queue_depth", out.queue_depth);
    out.batch = cfg.get_u32("batch", out.batch);
    const std::string arrival = cfg.get("arrival", "closed");
    if (arrival == "closed") {
        out.open_arrival = false;
    } else if (arrival.rfind("open:", 0) == 0) {
        out.open_arrival = true;
        out.arrival_per_sec = std::strtod(arrival.c_str() + 5, nullptr);
        if (!(out.arrival_per_sec > 0)) {
            throw std::invalid_argument("svc: arrival=open:<rate> needs a "
                                        "positive rate, got '" +
                                        arrival + "'");
        }
    } else {
        throw std::invalid_argument(
            "svc: arrival must be 'closed' or 'open:<rate>', got '" + arrival +
            "'");
    }
    out.deadline_us = cfg.get_u64("deadline_us", out.deadline_us);
    const std::string retry = cfg.get("retry", "none");
    if (retry == "none") {
        out.retry_budget = 0;
    } else if (retry.rfind("backoff:", 0) == 0) {
        out.retry_budget = static_cast<std::uint32_t>(
            parse_u64(retry.substr(8), "retry=backoff"));
    } else {
        throw std::invalid_argument(
            "svc: retry must be 'none' or 'backoff:<budget>', got '" + retry +
            "'");
    }
    out.backoff_cap_us = cfg.get_u64("backoff_cap_us", out.backoff_cap_us);
    out.requests_per_client = cfg.get_u64("requests", out.requests_per_client);
    out.ops_per_request = cfg.get_u32("ops", out.ops_per_request);
    out.slots = cfg.get_u32("slots", out.slots);
    out.rmw = cfg.get_bool("rmw", out.rmw);
    out.seed = cfg.get_u64("seed", out.seed);
    out.fault = svc_fault_from(cfg.get("svc_fault", ""));
    return out;
}

std::string svc_repro_flags(const SvcConfig& cfg) {
    std::string out = "--clients=" + std::to_string(cfg.clients) +
                      " --dispatchers=" + std::to_string(cfg.dispatchers) +
                      " --shards=" + std::to_string(cfg.shards) +
                      " --queue_depth=" + std::to_string(cfg.queue_depth) +
                      " --batch=" + std::to_string(cfg.batch);
    if (cfg.open_arrival) {
        out += " --arrival=open:" + std::to_string(cfg.arrival_per_sec);
    }
    if (cfg.deadline_us != 0) {
        out += " --deadline_us=" + std::to_string(cfg.deadline_us);
    }
    if (cfg.retry_budget != 0) {
        out += " --retry=backoff:" + std::to_string(cfg.retry_budget);
    }
    out += " --requests=" + std::to_string(cfg.requests_per_client) +
           " --ops=" + std::to_string(cfg.ops_per_request) +
           " --slots=" + std::to_string(cfg.slots) +
           " --rmw=" + std::string(cfg.rmw ? "1" : "0") +
           " --seed=" + std::to_string(cfg.seed);
    const std::string fault = to_string(cfg.fault);
    if (fault != "none") out += " --svc_fault=" + fault;
    return out;
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

struct Service::ClientState {
    SvcCounters counters;
    /// Closed-loop window: requests of this client admitted but not yet
    /// resolved. Written by the client (admit) and dispatchers (resolve).
    std::atomic<std::uint64_t> outstanding{0};
};

struct Service::DispatcherState {
    SvcCounters counters;
    util::LatencyHistogram latency;
    std::unique_ptr<stm::Executor> exec;
    std::uint32_t cursor = 0;  ///< round-robin shard scan start
    bool stalled = false;      ///< stall_dispatcher fired already
};

Service::Service(SvcConfig cfg, stm::Stm& tm, SvcEnv& env,
                 std::uint64_t* arena)
    : cfg_(cfg),
      tm_(tm),
      env_(env),
      arena_(arena),
      queues_(cfg.shard_count(), cfg.queue_depth) {
    if (cfg_.clients == 0 || cfg_.dispatchers == 0) {
        throw std::invalid_argument("svc: clients and dispatchers must be >= 1");
    }
    if (cfg_.dispatchers > tm_.max_live_executors()) {
        throw std::invalid_argument(
            "svc: dispatchers=" + std::to_string(cfg_.dispatchers) +
            " exceeds the backend's capacity of " +
            std::to_string(tm_.max_live_executors()));
    }
    if (cfg_.slots == 0 || cfg_.batch == 0 || cfg_.ops_per_request == 0 ||
        cfg_.requests_per_client == 0) {
        throw std::invalid_argument(
            "svc: slots, batch, ops, requests must all be >= 1");
    }
    clients_.reserve(cfg_.clients);
    for (std::uint32_t c = 0; c < cfg_.clients; ++c) {
        clients_.push_back(std::make_unique<ClientState>());
    }
    dispatchers_.reserve(cfg_.dispatchers);
    // Executors are created sequentially so dispatcher d always binds
    // TxId d — the determinism contract the turnstile driver relies on.
    for (std::uint32_t d = 0; d < cfg_.dispatchers; ++d) {
        dispatchers_.push_back(std::make_unique<DispatcherState>());
        dispatchers_.back()->exec = tm_.make_executor();
        dispatchers_.back()->cursor = d % queues_.shards();
    }
    started_at_ = env_.now();
}

Service::~Service() = default;

void Service::resolve(const Request& r) {
    if (!cfg_.open_arrival) {
        clients_[r.client]->outstanding.fetch_sub(1,
                                                  std::memory_order_release);
    }
}

void Service::client_loop(std::uint32_t client) {
    ClientState& st = *clients_[client];
    // Open arrival: the total offered rate splits evenly across clients,
    // phase-shifted so submissions interleave instead of thundering.
    const std::uint64_t interval =
        cfg_.open_arrival
            ? static_cast<std::uint64_t>(1e6 * cfg_.clients /
                                         cfg_.arrival_per_sec)
            : 0;
    for (std::uint64_t k = 0; k < cfg_.requests_per_client; ++k) {
        if (cfg_.open_arrival) {
            if (interval != 0) {
                env_.pace_until(started_at_ + k * interval +
                                (interval * client) / cfg_.clients);
            }
        } else {
            // Closed loop, window of 1: wait for the previous request to
            // resolve before offering the next.
            while (st.outstanding.load(std::memory_order_acquire) != 0) {
                scheduler_yield(YieldPoint::kSvcSubmit, YieldSite::kSvcEnqueue);
                env_.idle();
            }
        }
        Request r;
        r.id = std::uint64_t{client} * cfg_.requests_per_client + k;
        r.client = client;
        r.seed = svc_request_seed(cfg_.seed, r.id);
        r.submit_at = env_.now();
        r.deadline_at =
            cfg_.deadline_us != 0 ? r.submit_at + cfg_.deadline_us : 0;
        const auto shard = static_cast<std::uint32_t>(r.id % queues_.shards());
        ++st.counters.submitted;
        // The kill-point window between "counted submitted" and the push is
        // deliberate: a run killed here leaves the request in flight, which
        // the conservation oracle's clients term covers.
        scheduler_yield(YieldPoint::kSvcSubmit, YieldSite::kSvcEnqueue);
        if (cfg_.fault.slow_shard >= 0 &&
            shard == static_cast<std::uint32_t>(cfg_.fault.slow_shard)) {
            scheduler_yield(YieldPoint::kSvcSubmit, YieldSite::kSvcEnqueue);
            env_.idle();
        }
        if (!cfg_.open_arrival) {
            st.outstanding.fetch_add(1, std::memory_order_release);
        }
        if (queues_.try_push(shard, r)) {
            ++st.counters.accepted;
        } else {
            ++st.counters.rejected_queue;
            if (!cfg_.open_arrival) {
                st.outstanding.fetch_sub(1, std::memory_order_release);
            }
        }
    }
    // The last client out closes intake: shutdown begins.
    if (clients_done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        cfg_.clients) {
        queues_.close();
    }
}

void Service::dispatcher_loop(std::uint32_t dispatcher) {
    DispatcherState& st = *dispatchers_[dispatcher];
    const std::uint32_t nshards = queues_.shards();
    std::vector<Request> batch;
    batch.reserve(cfg_.batch);
    for (;;) {
        scheduler_yield(YieldPoint::kSvcDispatch, YieldSite::kSvcDequeue);
        batch.clear();
        for (std::uint32_t probe = 0;
             probe < nshards && batch.size() < cfg_.batch; ++probe) {
            const std::uint32_t shard = (st.cursor + probe) % nshards;
            if (cfg_.fault.slow_shard >= 0 &&
                shard == static_cast<std::uint32_t>(cfg_.fault.slow_shard)) {
                scheduler_yield(YieldPoint::kSvcDispatch,
                                YieldSite::kSvcDequeue);
                env_.idle();
            }
            Request r;
            while (batch.size() < cfg_.batch && queues_.try_pop(shard, r)) {
                batch.push_back(r);
            }
        }
        st.cursor = (st.cursor + 1) % nshards;
        if (batch.empty()) {
            // Drain protocol: intake closed + rings empty = done. Requests
            // other dispatchers already popped are theirs to resolve.
            if (queues_.closed() && queues_.all_empty()) return;
            env_.idle();
            continue;
        }
        run_batch(dispatcher, batch);
    }
}

void Service::run_batch(std::uint32_t dispatcher, std::vector<Request>& batch) {
    DispatcherState& st = *dispatchers_[dispatcher];
    // Deadline triage at dispatch: expired requests are never executed.
    const std::uint64_t now = env_.now();
    std::size_t keep = 0;
    for (const Request& r : batch) {
        if (r.deadline_at != 0 && now > r.deadline_at) {
            scheduler_yield(YieldPoint::kSvcDispatch, YieldSite::kSvcRespond);
            ++st.counters.timed_out;
            resolve(r);
        } else {
            batch[keep++] = r;
        }
    }
    batch.resize(keep);
    if (batch.empty()) return;

    const bool record = env_.record_commits();
    SvcCommit rec;
    rec.dispatcher = dispatcher;
    std::uint32_t attempt = 0;
    for (;;) {
        try {
            // abort_attempts fault: deterministic injected conflicts ahead
            // of any STM work — the retry-budget path without real
            // contention.
            if (attempt < cfg_.fault.abort_attempts) {
                throw stm::TooMuchContention(attempt + 1);
            }
            st.exec->atomically([&](stm::Transaction& tx) {
                // Re-executed per attempt: only the successful attempt's
                // records survive.
                rec.request_ids.clear();
                rec.reads.clear();
                rec.writes.clear();
                for (const Request& r : batch) {
                    if (record) rec.request_ids.push_back(r.id);
                    for (std::uint32_t i = 0; i < cfg_.ops_per_request; ++i) {
                        const std::uint32_t slot =
                            svc_op_slot(r.seed, i, cfg_.slots);
                        std::uint64_t v = 0;
                        if (cfg_.rmw) {
                            v = tx.load(slot_addr(slot));
                            if (record) rec.reads.push_back({slot, v});
                        }
                        const std::uint64_t nv =
                            svc_op_value(r.seed, i, v, cfg_.rmw);
                        tx.store(slot_addr(slot), nv);
                        if (record) rec.writes.push_back({slot, nv});
                    }
                }
            });
            break;  // committed
        } catch (const stm::TooMuchContention&) {
            if (attempt == 0) ++st.counters.first_try_conflicts;
            if (attempt >= cfg_.retry_budget) {
                // Budget exhausted: the whole batch is rejected — counted,
                // resolved, never hung.
                for (const Request& r : batch) {
                    scheduler_yield(YieldPoint::kSvcDispatch,
                                    YieldSite::kSvcRespond);
                    ++st.counters.rejected_retry;
                    resolve(r);
                }
                return;
            }
            ++attempt;
            ++st.counters.retries;
            env_.backoff(attempt);
        }
    }

    // Committed. No yield point runs between the backend's commit and this
    // push, so commit-log position is commit order (same argument as the
    // sched harness).
    ++st.counters.batches;
    if (record) {
        commit_log_.push_back(std::move(rec));
        rec = SvcCommit{};
    }
    const std::uint64_t done_at = env_.now();
    for (const Request& r : batch) {
        // One yield per response: a kill can land after the commit but
        // before any individual acknowledgment — the committed-but-
        // unacknowledged window the conservation oracle bounds.
        scheduler_yield(YieldPoint::kSvcDispatch, YieldSite::kSvcRespond);
        ++st.counters.completed;
        if (cfg_.fault.drop_response && r.id % 4 == 3) {
            ++st.counters.dropped_responses;
        } else {
            ++st.counters.responded;
            st.latency.record(done_at - r.submit_at);
        }
        resolve(r);
    }
    if (cfg_.fault.stall_dispatcher_ms != 0 && !st.stalled) {
        st.stalled = true;
        ++st.counters.stalls;
        env_.stall(cfg_.fault.stall_dispatcher_ms);
    }
}

ServiceReport Service::finish(bool complete) {
    if (finished_) {
        throw std::logic_error("svc: Service::finish called twice");
    }
    finished_ = true;
    ServiceReport rep;
    rep.stm = tm_.stats();
    for (auto& d : dispatchers_) {
        rep.stm.merge(d->exec->stats());
        rep.counters.merge(d->counters);
        rep.latency.merge(d->latency);
        // Quiesce the backend: retire the dispatcher's context so buffered
        // retired blocks reach the reclamation shards before the drain.
        d->exec.reset();
    }
    for (auto& c : clients_) rep.counters.merge(c->counters);
    tm_.reclaim_drain();
    rep.elapsed_seconds =
        static_cast<double>(env_.now() - started_at_) / 1e6;
    rep.ledger_note = audit(rep.counters, complete);
    rep.ledger_ok = rep.ledger_note.empty();
    return rep;
}

std::string Service::audit(const SvcCounters& c, bool complete) const {
    const auto eq = [](std::uint64_t a, std::uint64_t b, const char* what) {
        return a == b ? std::string()
                      : std::string(what) + ": " + std::to_string(a) +
                            " != " + std::to_string(b);
    };
    if (complete) {
        if (auto e = eq(c.submitted, c.accepted + c.rejected_queue,
                        "submitted != accepted + rejected_queue");
            !e.empty()) {
            return e;
        }
        if (auto e =
                eq(c.accepted, c.completed + c.rejected_retry + c.timed_out,
                   "accepted != completed + rejected_retry + timed_out");
            !e.empty()) {
            return e;
        }
        if (auto e = eq(c.completed, c.responded + c.dropped_responses,
                        "completed != responded + dropped_responses");
            !e.empty()) {
            return e;
        }
        for (std::uint32_t i = 0; i < cfg_.clients; ++i) {
            const std::uint64_t w =
                clients_[i]->outstanding.load(std::memory_order_acquire);
            if (w != 0) {
                return "client " + std::to_string(i) + " window still holds " +
                       std::to_string(w) + " requests after drain";
            }
        }
        if (const std::uint64_t held = tm_.occupied_metadata_entries()) {
            return "ownership table not quiescent after drain: " +
                   std::to_string(held) + " entries still held";
        }
        return {};
    }
    // Killed mid-flight: exact balance is impossible, but nothing may be
    // lost or duplicated, and in-flight counts stay within the structural
    // bounds (rings + dispatcher batches + submissions in progress).
    const std::uint64_t admitted = c.accepted + c.rejected_queue;
    if (admitted > c.submitted) {
        return "admission outcomes exceed submissions";
    }
    if (c.submitted - admitted > cfg_.clients) {
        return "more submissions in limbo than clients";
    }
    const std::uint64_t settled = c.completed + c.rejected_retry + c.timed_out;
    if (settled > c.accepted) {
        return "settled requests exceed accepted";
    }
    const std::uint64_t dispatcher_window =
        std::uint64_t{cfg_.dispatchers} * cfg_.batch;
    if (c.accepted - settled > queues_.capacity() + dispatcher_window) {
        return "in-flight " + std::to_string(c.accepted - settled) +
               " exceeds ring capacity + dispatcher batches (" +
               std::to_string(queues_.capacity() + dispatcher_window) + ")";
    }
    if (c.responded + c.dropped_responses > c.completed) {
        return "responses exceed completions";
    }
    if (c.completed - (c.responded + c.dropped_responses) >
        dispatcher_window) {
        return "more unacknowledged completions than one batch per "
               "dispatcher";
    }
    return {};
}

// ---------------------------------------------------------------------------
// Production driver
// ---------------------------------------------------------------------------

namespace {

class WallClockEnv final : public SvcEnv {
public:
    explicit WallClockEnv(std::uint64_t backoff_cap_us)
        : cap_us_(backoff_cap_us == 0 ? 1 : backoff_cap_us),
          t0_(std::chrono::steady_clock::now()) {}

    std::uint64_t now() override {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0_)
                .count());
    }
    void backoff(std::uint32_t attempt) override {
        const std::uint64_t us = std::min<std::uint64_t>(
            cap_us_, std::uint64_t{4} << std::min(attempt, 24u));
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    void idle() override {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    void pace_until(std::uint64_t t) override {
        std::this_thread::sleep_until(t0_ + std::chrono::microseconds(t));
    }
    void stall(std::uint32_t ms) override {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }

private:
    std::uint64_t cap_us_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace

ServiceReport run_service(const config::Config& cfg) {
    const SvcConfig sc = svc_config_from(cfg);
    const auto tm = stm::Stm::create(cfg);

    // 64-byte-aligned arena: one conflict block per slot, zero-initialized.
    std::vector<std::uint64_t> storage(std::size_t{sc.slots} * 8 + 8, 0);
    auto base = reinterpret_cast<std::uintptr_t>(storage.data());
    base = (base + 63) & ~std::uintptr_t{63};
    auto* arena = reinterpret_cast<std::uint64_t*>(base);

    WallClockEnv env(sc.backoff_cap_us);
    Service svc(sc, *tm, env, arena);

    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(sc.clients + sc.dispatchers);
    threads.reserve(sc.clients + sc.dispatchers);
    for (std::uint32_t c = 0; c < sc.clients; ++c) {
        threads.emplace_back([&svc, &errors, c] {
            try {
                svc.client_loop(c);
            } catch (...) {
                errors[c] = std::current_exception();
            }
        });
    }
    for (std::uint32_t d = 0; d < sc.dispatchers; ++d) {
        threads.emplace_back([&svc, &errors, &sc, d] {
            try {
                svc.dispatcher_loop(d);
            } catch (...) {
                errors[sc.clients + d] = std::current_exception();
            }
        });
    }
    for (auto& th : threads) th.join();
    for (auto& err : errors) {
        if (err) std::rethrow_exception(err);
    }
    return svc.finish(/*complete=*/true);
}

}  // namespace tmb::svc
