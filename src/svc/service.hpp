// service.hpp — the live service front-end: clients → sharded bounded
// queues → dispatcher threads batching requests into transactions.
//
// The robustness contract, in one place:
//
//   * Admission control — the submission rings (svc/queue.hpp) are the only
//     buffer in the system and they are bounded; a full shard rejects the
//     request explicitly. Memory and queueing delay cannot grow without
//     bound no matter the arrival rate.
//   * Deadlines — each request carries an absolute deadline; a dispatcher
//     triages expired requests out at dequeue time (they are never
//     executed) and counts them as timeouts.
//   * Retry with backoff — the STM retries conflicts internally up to
//     `max_attempts`; when it gives up (TooMuchContention) the dispatcher
//     retries the whole batch with exponential backoff up to
//     `retry_budget`, then rejects. Exhaustion is a counted rejection,
//     never a hang.
//   * Conservation — every submitted request ends in exactly one bucket:
//     completed, rejected (admission or retry), or timed out. The ledger
//     (`ServiceReport::ledger_ok`) is checked after every drain, and the
//     kill-point oracle (svc/sched_service.hpp) checks the relaxed
//     in-flight form at every step.
//   * Clean shutdown — stop intake (queues close when the last client
//     finishes) → dispatchers drain the rings → executors retire →
//     reclaim_drain → ledger check.
//
// The same Service object runs under two drivers through the SvcEnv
// interface: real threads and a wall clock (run_service, production mode),
// or the deterministic turnstile with a virtual step clock
// (svc/sched_service.cpp). All loop bodies yield through
// stm::detail::scheduler_yield — free when no hook is installed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "stm/stm.hpp"
#include "svc/queue.hpp"
#include "util/hash.hpp"
#include "util/latency_histogram.hpp"

namespace tmb::svc {

/// Degraded-mode injection, parsed from `svc_fault=` (comma-separated):
///   stall_dispatcher:<ms>  each dispatcher stalls once after its first
///                          commit (sleep in production, extra yields under
///                          the turnstile)
///   drop_response          responses of requests with id % 4 == 3 are
///                          dropped after commit (the request still resolves
///                          — committed-but-unacknowledged accounting)
///   slow_shard:<n>         touching shard n costs an extra idle + yield
///   abort_attempts:<n>     the first n execute attempts of every batch
///                          fail as injected conflicts (deterministic
///                          retry-budget testing; no STM involvement)
struct SvcFault {
    std::uint32_t stall_dispatcher_ms = 0;
    bool drop_response = false;
    std::int64_t slow_shard = -1;
    std::uint32_t abort_attempts = 0;
};

[[nodiscard]] SvcFault svc_fault_from(const std::string& spec);
[[nodiscard]] std::string to_string(const SvcFault& fault);

/// Service shape, parsed from the same string-keyed Config vocabulary as
/// every other driver (see svc_config_from for the key list).
struct SvcConfig {
    std::uint32_t clients = 4;
    std::uint32_t dispatchers = 2;
    std::uint32_t shards = 0;       ///< 0 = one per dispatcher
    std::uint32_t queue_depth = 64; ///< per shard (admission bound)
    std::uint32_t batch = 8;        ///< max requests folded into one tx
    bool open_arrival = false;      ///< open: paced; closed: window of 1
    double arrival_per_sec = 0.0;   ///< total offered rate (open only)
    std::uint64_t deadline_us = 0;  ///< relative deadline; 0 = none
    std::uint32_t retry_budget = 0; ///< dispatcher-level retries per batch
    std::uint64_t backoff_cap_us = 1000;  ///< exponential backoff ceiling
    std::uint64_t requests_per_client = 1000;
    std::uint32_t ops_per_request = 4;
    std::uint32_t slots = 1024;     ///< shared words the requests touch
    bool rmw = true;  ///< read-modify-write ops; false = blind stores
    std::uint64_t seed = 1;
    SvcFault fault{};

    [[nodiscard]] std::uint32_t shard_count() const {
        return shards == 0 ? dispatchers : shards;
    }
};

/// Keys: clients, dispatchers, shards, queue_depth, batch,
/// arrival=open:<rate>|closed, deadline_us, retry=none|backoff:<budget>,
/// backoff_cap_us, requests, ops, slots, rmw, seed, svc_fault=<spec>.
[[nodiscard]] SvcConfig svc_config_from(const config::Config& cfg);

/// `--key=value` flags reproducing `cfg` (repro lines, svc_load echo).
[[nodiscard]] std::string svc_repro_flags(const SvcConfig& cfg);

/// Request-conservation counters. Single-writer per thread; merged at join.
struct SvcCounters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;        ///< admitted into a ring
    std::uint64_t rejected_queue = 0;  ///< admission control said no
    std::uint64_t rejected_retry = 0;  ///< retry budget exhausted
    std::uint64_t timed_out = 0;       ///< expired before execution
    std::uint64_t completed = 0;       ///< committed in some batch
    std::uint64_t responded = 0;       ///< response delivered
    std::uint64_t dropped_responses = 0;  ///< drop_response fault ate it
    std::uint64_t retries = 0;         ///< dispatcher-level batch retries
    std::uint64_t batches = 0;         ///< committed batches
    std::uint64_t first_try_conflicts = 0;  ///< batches whose 1st try aborted
    std::uint64_t stalls = 0;          ///< stall_dispatcher firings

    void merge(const SvcCounters& o) {
        submitted += o.submitted;
        accepted += o.accepted;
        rejected_queue += o.rejected_queue;
        rejected_retry += o.rejected_retry;
        timed_out += o.timed_out;
        completed += o.completed;
        responded += o.responded;
        dropped_responses += o.dropped_responses;
        retries += o.retries;
        batches += o.batches;
        first_try_conflicts += o.first_try_conflicts;
        stalls += o.stalls;
    }
    /// Requests that reached a terminal bucket.
    [[nodiscard]] std::uint64_t resolved() const {
        return completed + rejected_queue + rejected_retry + timed_out;
    }
};

/// One committed batch, for the deterministic oracle's serial replay
/// (recorded only when SvcEnv::record_commits() is true).
struct SvcSlotValue {
    std::uint32_t slot = 0;
    std::uint64_t value = 0;
};
struct SvcCommit {
    std::uint32_t dispatcher = 0;
    std::vector<std::uint64_t> request_ids;  ///< execution order
    std::vector<SvcSlotValue> reads;   ///< op order across requests (rmw)
    std::vector<SvcSlotValue> writes;  ///< op order across requests
};

/// Environment a Service runs against: wall clock + sleeps in production,
/// virtual step clock + yields under the deterministic turnstile.
class SvcEnv {
public:
    virtual ~SvcEnv() = default;
    /// Monotonic clock: microseconds in production, scheduler steps under
    /// the turnstile. Deadlines and latencies are measured in its unit.
    [[nodiscard]] virtual std::uint64_t now() = 0;
    /// Dispatcher-level retry backoff before attempt `attempt` (1-based).
    virtual void backoff(std::uint32_t attempt) = 0;
    /// Nothing to do right now (empty rings, closed-loop window wait).
    virtual void idle() = 0;
    /// Open-arrival pacing: block until now() >= t.
    virtual void pace_until(std::uint64_t t) = 0;
    /// stall_dispatcher fault body.
    virtual void stall(std::uint32_t ms) = 0;
    /// Record SvcCommit entries (deterministic oracle mode only).
    [[nodiscard]] virtual bool record_commits() const { return false; }
};

/// Aggregate of one service run, after drain.
struct ServiceReport {
    SvcCounters counters;
    util::LatencyHistogram latency;  ///< responded requests, env clock units
    stm::StmStats stm;
    double elapsed_seconds = 0.0;
    bool ledger_ok = false;
    std::string ledger_note;  ///< first imbalance, empty when ledger_ok
};

/// Deterministic request-derivation helpers — shared by the execution path
/// and the oracle's serial replay (they must agree bit-for-bit).
[[nodiscard]] inline std::uint64_t svc_request_seed(std::uint64_t cfg_seed,
                                                    std::uint64_t id) {
    return util::mix64(cfg_seed ^ util::mix64(id + 1));
}
[[nodiscard]] inline std::uint32_t svc_op_slot(std::uint64_t seed,
                                               std::uint32_t i,
                                               std::uint32_t slots) {
    return static_cast<std::uint32_t>(util::mix64(seed ^ (0x51D7ULL + i)) %
                                      slots);
}
[[nodiscard]] inline std::uint64_t svc_op_value(std::uint64_t seed,
                                                std::uint32_t i,
                                                std::uint64_t read, bool rmw) {
    return rmw ? util::mix64(read ^ seed ^ (i + 1))
               : util::mix64(seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL));
}

/// The service proper. Construction creates one Executor per dispatcher
/// sequentially (dispatcher d binds TxId d — the determinism contract the
/// turnstile driver relies on). `arena` must hold cfg.slots 64-byte blocks
/// (slot s lives at arena + s*8), zeroed by the caller.
class Service {
public:
    Service(SvcConfig cfg, stm::Stm& tm, SvcEnv& env, std::uint64_t* arena);
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// Worker bodies. Run each on its own thread (real or virtual); every
    /// blocking moment goes through env/scheduler_yield. client_loop
    /// returns after its submission budget; the *last* client to finish
    /// closes intake. dispatcher_loop returns once intake is closed and
    /// the rings are empty.
    void client_loop(std::uint32_t client);
    void dispatcher_loop(std::uint32_t dispatcher);

    /// After every loop returned (or was cancelled) and the threads are
    /// joined: retires executors, drains reclamation, merges counters and
    /// histograms, and audits the conservation ledger. `complete` = the
    /// run drained normally (strict ledger); false = killed mid-flight
    /// (relaxed in-flight bounds). Call exactly once.
    [[nodiscard]] ServiceReport finish(bool complete);

    // --- deterministic-driver accessors ---
    [[nodiscard]] const std::vector<SvcCommit>& commit_log() const {
        return commit_log_;
    }
    [[nodiscard]] std::size_t commit_count() const {
        return commit_log_.size();
    }
    [[nodiscard]] const SvcConfig& config() const { return cfg_; }
    [[nodiscard]] const SubmitQueues& queues() const { return queues_; }
    /// Upper bound on requests in flight at any instant (kill-mode ledger):
    /// ring capacity + one batch per dispatcher + one submission-in-
    /// progress per client.
    [[nodiscard]] std::uint64_t in_flight_bound() const {
        return queues_.capacity() +
               std::uint64_t{cfg_.dispatchers} * cfg_.batch + cfg_.clients;
    }

private:
    struct ClientState;
    struct DispatcherState;

    void resolve(const Request& r);  ///< closed-loop window release
    void run_batch(std::uint32_t dispatcher, std::vector<Request>& batch);
    [[nodiscard]] std::string audit(const SvcCounters& c, bool complete) const;
    [[nodiscard]] std::uint64_t* slot_addr(std::uint32_t slot) const {
        return arena_ + std::size_t{slot} * 8;  // 64-byte stride: 1 block/slot
    }

    SvcConfig cfg_;
    stm::Stm& tm_;
    SvcEnv& env_;
    std::uint64_t* arena_;
    SubmitQueues queues_;
    std::vector<std::unique_ptr<ClientState>> clients_;
    std::vector<std::unique_ptr<DispatcherState>> dispatchers_;
    std::vector<SvcCommit> commit_log_;
    std::atomic<std::uint32_t> clients_done_{0};
    std::uint64_t started_at_ = 0;
    bool finished_ = false;
};

/// Production driver: real threads, wall clock. Parses the full key set
/// (STM keys + svc keys) from `cfg`, runs the service to completion, and
/// returns the drained report. Latencies are in microseconds.
[[nodiscard]] ServiceReport run_service(const config::Config& cfg);

}  // namespace tmb::svc
