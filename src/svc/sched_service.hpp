// sched_service.hpp — the service harness under the deterministic
// turnstile: kill-at-any-step runs with a conservation + prefix-consistency
// oracle, and guided schedule fuzzing over service interleavings.
//
// The same Service object that serves real threads (svc/service.hpp) runs
// here on virtual threads: clients 0..C-1 and dispatchers C..C+D-1 advance
// only when a sched::Schedule grants them a step, the clock is the step
// counter itself (deadlines fire at exact steps — test-assertable), and
// every committed batch is recorded for serial replay. Cancelling the run
// at step K *is* killing the service at K; the oracle then checks
//
//   * conservation — submitted == completed + rejected + timed-out +
//     in-flight-at-kill, with in-flight bounded by ring capacity +
//     dispatcher batches + submissions in progress (never unbounded);
//   * prefix consistency — the recorded commit log replayed serially
//     reproduces every recorded read/write and the rolled-back final
//     memory, i.e. a kill never tears a batch or loses a committed one.
//
// fuzz_service is the service-shaped twin of sched::fuzz_explore: same
// Corpus, same mutators, same signature scheme, different subject.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "sched/corpus.hpp"
#include "sched/schedule.hpp"
#include "svc/service.hpp"

namespace tmb::svc {

/// Largest service-arena size under the turnstile (its own static arena,
/// independent of the sched harness's — the model-validation sweep wants
/// slot counts matching real table sizes).
inline constexpr std::uint32_t kSvcMaxSlots = 2048;

/// One deterministic service subject: STM selection + service shape.
/// Arrival is always closed (virtual time has no Poisson process), and
/// svc.deadline_us is measured in scheduler *steps*.
struct SvcHarnessConfig {
    std::string backend = "table";
    std::string table = "tagless";
    std::uint64_t entries = 16;
    bool commit_time_locks = false;
    std::string clock;
    std::string engine;
    std::string policy;
    std::uint64_t epoch = 0;
    std::uint64_t max_entries = 0;
    /// STM-internal attempts before TooMuchContention surfaces to the
    /// dispatcher's retry/backoff layer. Small by default so schedules can
    /// actually reach the service-level retry paths.
    std::uint32_t max_attempts = 4;
    SvcConfig svc = [] {
        SvcConfig s;
        s.clients = 2;
        s.dispatchers = 1;
        s.shards = 1;
        s.queue_depth = 2;
        s.batch = 2;
        s.requests_per_client = 3;
        s.ops_per_request = 2;
        s.slots = 8;
        s.rmw = true;
        return s;
    }();
    std::uint64_t step_limit = std::uint64_t{1} << 20;

    [[nodiscard]] std::uint32_t threads() const {
        return svc.clients + svc.dispatchers;
    }
};

/// Parses sched_explorer-style keys: the sched harness STM vocabulary
/// (backend, table, entries, commit_time_locks, clock, engine, policy,
/// epoch, max_entries) plus max_attempts, step_limit, and the service shape
/// (clients, dispatchers, shards, queue_depth, batch, requests, ops, slots,
/// rmw, wseed, deadline_steps, retry=none|backoff:<n>, svc_fault).
[[nodiscard]] SvcHarnessConfig svc_harness_config_from(
    const config::Config& cfg);

/// The Config handed to stm::Stm::create — the sched harness determinism
/// pins (hash=shift-mask, contention=none, reclaim_shards=2) plus
/// max_attempts.
[[nodiscard]] config::Config svc_stm_spec(const SvcHarnessConfig& cfg);

[[nodiscard]] std::string svc_harness_repro_flags(const SvcHarnessConfig& cfg);
[[nodiscard]] std::string svc_harness_repro_line(const SvcHarnessConfig& cfg,
                                                 const std::string& schedule);

/// Outcome of one scheduled service run.
struct ServiceRunResult {
    std::string schedule;  ///< recorded picks (replayable)
    std::uint64_t steps = 0;
    bool cancelled = false;  ///< killed at step_limit
    SvcCounters counters;
    std::vector<SvcCommit> commit_log;  ///< commit order
    std::vector<std::uint64_t> final_state;
    std::uint64_t state_hash = 0;
    stm::StmStats stats;
    std::uint64_t signature = 0;
    std::uint32_t sites_seen = 0;  ///< YieldSite bitmask (harness.hpp)
    bool ledger_ok = false;
    std::string ledger_note;
};

/// Runs the service under `schedule`. Deterministic: identical inputs give
/// identical results (virtual threads bind TxIds in index order, the clock
/// is the step counter, and request contents derive from svc.seed).
[[nodiscard]] ServiceRunResult run_service_schedule(
    const SvcHarnessConfig& cfg, sched::Schedule& schedule);

/// The service oracle: conservation ledger + commit-log/counter agreement +
/// at-most-once execution per request + serial replay of the commit log
/// reproducing every recorded read/write and the final memory. Handles
/// killed runs (run.cancelled) with the relaxed in-flight ledger; complete
/// runs must balance exactly. nullopt = consistent.
[[nodiscard]] std::optional<std::string> check_service_consistent(
    const SvcHarnessConfig& cfg, const ServiceRunResult& run);

/// Kill-point oracle: replays `schedule` with the step budget cut to
/// `kill_step` and applies check_service_consistent to whatever survived.
[[nodiscard]] std::optional<std::string> check_service_kill_point(
    const SvcHarnessConfig& cfg, const std::string& schedule,
    std::uint64_t kill_step);

/// Coverage-guided fuzzing over service schedules — sched::fuzz_explore's
/// twin (same corpus format, mutators, signatures, kill cadence), with
/// check_service_consistent as the oracle.
[[nodiscard]] sched::FuzzResult fuzz_service(const SvcHarnessConfig& cfg,
                                             const sched::FuzzOptions& opts,
                                             sched::Corpus& corpus);

}  // namespace tmb::svc
