// queue.hpp — the service front door: sharded, bounded, mutex-striped
// submission rings.
//
// Admission control lives here: try_push on a full shard fails immediately
// (the caller counts an explicit rejection) instead of blocking or growing
// — the queue is the only buffer between clients and dispatchers, so its
// capacity bounds both memory and queueing delay by construction.
//
// Locking discipline: each shard has its own mutex, held only across the
// O(1) ring operation — never across a scheduler yield point. Under the
// deterministic turnstile (svc/sched_service.cpp) only one virtual thread
// runs at a time, so a thread parked at a yield while holding a shard lock
// would deadlock the whole run; callers therefore yield strictly outside
// these methods. Under real threads the same discipline keeps the critical
// sections a handful of instructions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tmb::svc {

/// One client operation in flight. The op list a request performs is
/// derived deterministically from `seed` (svc/service.cpp), so the request
/// itself stays a fixed-size POD in the ring.
struct Request {
    std::uint64_t id = 0;           ///< globally unique (client-major order)
    std::uint32_t client = 0;       ///< submitting client index
    std::uint64_t seed = 0;         ///< derives the transactional op list
    std::uint64_t submit_at = 0;    ///< clock at submission (us or steps)
    std::uint64_t deadline_at = 0;  ///< absolute deadline; 0 = none
};

class SubmitQueues {
public:
    SubmitQueues(std::uint32_t shards, std::uint32_t depth)
        : depth_(depth == 0 ? 1 : depth) {
        shards_.reserve(shards == 0 ? 1 : shards);
        for (std::uint32_t s = 0; s < (shards == 0 ? 1 : shards); ++s) {
            shards_.push_back(std::make_unique<Shard>());
            shards_.back()->ring.resize(depth_);
        }
    }

    /// False when the shard is full (admission rejection) or intake is
    /// closed (shutdown began). Never blocks beyond the shard mutex.
    bool try_push(std::uint32_t shard, const Request& r) {
        Shard& sh = *shards_[shard % shards_.size()];
        const std::lock_guard<std::mutex> lock(sh.mu);
        if (closed_.load(std::memory_order_relaxed)) return false;
        if (sh.tail - sh.head == depth_) return false;
        sh.ring[sh.tail % depth_] = r;
        ++sh.tail;
        return true;
    }

    /// False when the shard is empty.
    bool try_pop(std::uint32_t shard, Request& out) {
        Shard& sh = *shards_[shard % shards_.size()];
        const std::lock_guard<std::mutex> lock(sh.mu);
        if (sh.tail == sh.head) return false;
        out = sh.ring[sh.head % depth_];
        ++sh.head;
        return true;
    }

    /// Stops intake: every subsequent try_push fails. Requests already
    /// queued stay poppable — the drain protocol empties them.
    void close() { closed_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool closed() const {
        return closed_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] bool all_empty() const {
        for (const auto& sh : shards_) {
            const std::lock_guard<std::mutex> lock(sh->mu);
            if (sh->tail != sh->head) return false;
        }
        return true;
    }

    [[nodiscard]] std::uint32_t shards() const {
        return static_cast<std::uint32_t>(shards_.size());
    }
    [[nodiscard]] std::uint32_t depth() const { return depth_; }
    /// Total requests the rings can hold — the in-flight bound the
    /// kill-point conservation oracle checks against.
    [[nodiscard]] std::uint64_t capacity() const {
        return std::uint64_t{depth_} * shards_.size();
    }

private:
    struct Shard {
        mutable std::mutex mu;
        std::vector<Request> ring;
        std::uint64_t head = 0;  ///< pop position (monotonic)
        std::uint64_t tail = 0;  ///< push position (monotonic)
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint32_t depth_;
    std::atomic<bool> closed_{false};
};

}  // namespace tmb::svc
