#include "svc/sched_service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "sched/coverage.hpp"
#include "sched/harness.hpp"
#include "sched/turnstile.hpp"
#include "stm/sched_hook.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tmb::svc {

namespace {

using stm::detail::scheduler_yield;
using stm::detail::YieldPoint;
using stm::detail::YieldSite;

/// The service harness's own static arena (same rationale as the sched
/// harness's: process-stable addresses make replays exact; runs are
/// serialized by the turnstile, zeroed per run).
std::uint64_t* svc_arena() {
    alignas(64) static std::uint64_t words[std::size_t{kSvcMaxSlots} * 8];
    return words;
}

/// Virtual clock + yield-based waiting: the env the Service sees under the
/// turnstile. now() reads the scheduler's step counter through a pointer —
/// one step, one tick, so "deadline_us" is a deadline *step*.
class StepClockEnv final : public SvcEnv {
public:
    explicit StepClockEnv(const std::uint64_t* steps) : steps_(steps) {}

    std::uint64_t now() override { return *steps_; }
    void backoff(std::uint32_t /*attempt*/) override {
        // Backoff under virtual time is "let everyone else run once":
        // kRetry so PCT demotes the retrying dispatcher.
        scheduler_yield(YieldPoint::kRetry, YieldSite::kSvcDequeue);
    }
    void idle() override {}  // the loops' own yields pace everything
    void pace_until(std::uint64_t /*t*/) override {
        throw std::logic_error(
            "svc sched: open arrival is not supported under virtual time");
    }
    void stall(std::uint32_t ms) override {
        // A stall is ms extra yields: the dispatcher stays runnable but
        // burns steps, exactly what a wall-clock stall does to a schedule.
        for (std::uint32_t i = 0; i < ms; ++i) {
            scheduler_yield(YieldPoint::kSvcDispatch, YieldSite::kSvcDequeue);
        }
    }
    [[nodiscard]] bool record_commits() const override { return true; }

private:
    const std::uint64_t* steps_;
};

void validate(const SvcHarnessConfig& cfg) {
    if (cfg.threads() == 0 || cfg.threads() > sched::kMaxScheduleThreads) {
        throw std::invalid_argument(
            "svc sched: clients + dispatchers must be in [1, " +
            std::to_string(sched::kMaxScheduleThreads) + "]");
    }
    if (cfg.svc.slots == 0 || cfg.svc.slots > kSvcMaxSlots) {
        throw std::invalid_argument("svc sched: slots must be in [1, " +
                                    std::to_string(kSvcMaxSlots) + "]");
    }
    if (cfg.svc.open_arrival) {
        throw std::invalid_argument(
            "svc sched: arrival must be closed under virtual time");
    }
}

/// The sched harness shim carrying the shared STM fields, so svc_stm_spec
/// inherits stm_spec's determinism pins instead of duplicating them.
[[nodiscard]] sched::HarnessConfig stm_shim(const SvcHarnessConfig& cfg) {
    sched::HarnessConfig h;
    h.backend = cfg.backend;
    h.table = cfg.table;
    h.entries = cfg.entries;
    h.commit_time_locks = cfg.commit_time_locks;
    h.clock = cfg.clock;
    h.engine = cfg.engine;
    h.policy = cfg.policy;
    h.epoch = cfg.epoch;
    h.max_entries = cfg.max_entries;
    return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

SvcHarnessConfig svc_harness_config_from(const config::Config& cfg) {
    SvcHarnessConfig out;
    out.backend = cfg.get("backend", out.backend);
    out.table = cfg.get("table", out.table);
    out.entries = cfg.get_u64("entries", out.entries);
    out.commit_time_locks =
        cfg.get_bool("commit_time_locks", out.commit_time_locks);
    out.clock = cfg.get("clock", out.clock);
    out.engine = cfg.get("engine", out.engine);
    out.policy = cfg.get("policy", out.policy);
    out.epoch = cfg.get_u64("epoch", out.epoch);
    out.max_entries = cfg.get_u64("max_entries", out.max_entries);
    out.max_attempts = cfg.get_u32("max_attempts", out.max_attempts);
    out.step_limit = cfg.get_u64("step_limit", out.step_limit);
    out.svc.clients = cfg.get_u32("clients", out.svc.clients);
    out.svc.dispatchers = cfg.get_u32("dispatchers", out.svc.dispatchers);
    out.svc.shards = cfg.get_u32("shards", out.svc.shards);
    out.svc.queue_depth = cfg.get_u32("queue_depth", out.svc.queue_depth);
    out.svc.batch = cfg.get_u32("batch", out.svc.batch);
    out.svc.requests_per_client =
        cfg.get_u64("requests", out.svc.requests_per_client);
    out.svc.ops_per_request = cfg.get_u32("ops", out.svc.ops_per_request);
    out.svc.slots = cfg.get_u32("slots", out.svc.slots);
    out.svc.rmw = cfg.get_bool("rmw", out.svc.rmw);
    out.svc.seed = cfg.get_u64("wseed", out.svc.seed);
    out.svc.deadline_us = cfg.get_u64("deadline_steps", out.svc.deadline_us);
    const std::string retry = cfg.get("retry", "none");
    if (retry.rfind("backoff:", 0) == 0) {
        out.svc.retry_budget = static_cast<std::uint32_t>(
            std::stoull(retry.substr(8)));
    } else if (retry != "none") {
        throw std::invalid_argument(
            "svc sched: retry must be 'none' or 'backoff:<budget>'");
    }
    out.svc.fault = svc_fault_from(cfg.get("svc_fault", ""));
    return out;
}

config::Config svc_stm_spec(const SvcHarnessConfig& cfg) {
    config::Config spec = sched::stm_spec(stm_shim(cfg));
    if (cfg.max_attempts != 0) {
        spec.set("max_attempts", std::to_string(cfg.max_attempts));
    }
    return spec;
}

std::string svc_harness_repro_flags(const SvcHarnessConfig& cfg) {
    std::string out = "--svc=1 --backend=" + cfg.backend;
    if (cfg.backend == "table" || cfg.backend == "adaptive") {
        out += " --table=" + cfg.table;
    }
    if (cfg.backend == "adaptive") {
        if (!cfg.engine.empty()) out += " --engine=" + cfg.engine;
        if (!cfg.policy.empty()) out += " --policy=" + cfg.policy;
        if (cfg.epoch != 0) out += " --epoch=" + std::to_string(cfg.epoch);
        if (cfg.max_entries != 0) {
            out += " --max_entries=" + std::to_string(cfg.max_entries);
        }
    }
    if (cfg.commit_time_locks) out += " --commit_time_locks=1";
    if (!cfg.clock.empty()) out += " --clock=" + cfg.clock;
    out += " --entries=" + std::to_string(cfg.entries);
    out += " --max_attempts=" + std::to_string(cfg.max_attempts);
    out += " --clients=" + std::to_string(cfg.svc.clients);
    out += " --dispatchers=" + std::to_string(cfg.svc.dispatchers);
    out += " --shards=" + std::to_string(cfg.svc.shards);
    out += " --queue_depth=" + std::to_string(cfg.svc.queue_depth);
    out += " --batch=" + std::to_string(cfg.svc.batch);
    out += " --requests=" + std::to_string(cfg.svc.requests_per_client);
    out += " --ops=" + std::to_string(cfg.svc.ops_per_request);
    out += " --slots=" + std::to_string(cfg.svc.slots);
    out += " --rmw=" + std::string(cfg.svc.rmw ? "1" : "0");
    out += " --wseed=" + std::to_string(cfg.svc.seed);
    if (cfg.svc.deadline_us != 0) {
        out += " --deadline_steps=" + std::to_string(cfg.svc.deadline_us);
    }
    if (cfg.svc.retry_budget != 0) {
        out += " --retry=backoff:" + std::to_string(cfg.svc.retry_budget);
    }
    const std::string fault = to_string(cfg.svc.fault);
    if (fault != "none") out += " --svc_fault=" + fault;
    return out;
}

std::string svc_harness_repro_line(const SvcHarnessConfig& cfg,
                                   const std::string& schedule) {
    return "sched_explorer " + svc_harness_repro_flags(cfg) +
           " --schedule=" + schedule;
}

// ---------------------------------------------------------------------------
// The scheduled service run
// ---------------------------------------------------------------------------

ServiceRunResult run_service_schedule(const SvcHarnessConfig& cfg,
                                      sched::Schedule& schedule) {
    validate(cfg);
    const auto tm = stm::Stm::create(svc_stm_spec(cfg));
    std::fill(svc_arena(), svc_arena() + std::size_t{kSvcMaxSlots} * 8, 0);

    ServiceRunResult result;
    result.schedule.reserve(256);
    StepClockEnv env(&result.steps);
    Service svc(cfg.svc, *tm, env, svc_arena());

    const std::uint32_t threads = cfg.threads();
    const std::uint32_t clients = cfg.svc.clients;
    sched::Turnstile ts(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            sched::WorkerHook hook(ts, t);
            stm::detail::SchedulerHook* previous =
                stm::detail::install_scheduler_hook(&hook);
            std::exception_ptr error;
            try {
                if (t < clients) {
                    svc.client_loop(t);
                } else {
                    svc.dispatcher_loop(t - clients);
                }
            } catch (const sched::HarnessCancelled&) {
                // Killed: unwind quietly; the oracle audits what remains.
            } catch (...) {
                error = std::current_exception();
            }
            stm::detail::install_scheduler_hook(previous);
            ts.worker_finish(t, std::move(error));
        });
    }

    ts.await_parked(threads);
    std::uint64_t runnable = 0;
    for (std::uint32_t t = 0; t < threads; ++t) {
        if (!ts.finished(t)) runnable |= std::uint64_t{1} << t;
    }

    sched::CoverageAccumulator coverage;
    while (runnable != 0) {
        const std::uint32_t pick = schedule.pick(runnable, result.steps);
        if (pick >= 64 || ((runnable >> pick) & 1) == 0) {
            ts.cancel();
            for (std::uint64_t m = runnable; m != 0; m &= m - 1) {
                ts.grant(static_cast<std::uint32_t>(std::countr_zero(m)));
            }
            for (auto& w : workers) w.join();
            throw std::logic_error(
                "svc sched: schedule picked a non-runnable thread " +
                std::to_string(pick));
        }
        result.schedule.push_back(sched::thread_to_char(pick));
        const std::size_t commits_before = svc.commit_count();
        // Tick before the grant: during step N every worker's now() reads N,
        // so "timed out at step N" means the grant that was step N.
        ++result.steps;
        ts.grant(pick);

        if (ts.finished(pick)) {
            runnable &= ~(std::uint64_t{1} << pick);
            schedule.observe(pick, sched::Event::kThreadDone);
            coverage.finish(pick);
        } else {
            coverage.step(pick, ts.last_point(pick), ts.last_site(pick));
            result.sites_seen |=
                std::uint32_t{1}
                << static_cast<std::uint32_t>(ts.last_site(pick));
            if (ts.last_point(pick) == YieldPoint::kRetry) {
                schedule.observe(pick, sched::Event::kAbort);
            }
        }
        if (svc.commit_count() > commits_before) {
            schedule.observe(pick, sched::Event::kCommit);
        }

        if (result.steps >= cfg.step_limit && runnable != 0) {
            result.cancelled = true;
            ts.cancel();
            for (std::uint64_t m = runnable; m != 0; m &= m - 1) {
                ts.grant(static_cast<std::uint32_t>(std::countr_zero(m)));
            }
            break;
        }
    }

    for (auto& w : workers) w.join();
    for (std::uint32_t t = 0; t < threads; ++t) {
        if (ts.error(t)) std::rethrow_exception(ts.error(t));
    }

    result.final_state.resize(cfg.svc.slots);
    std::uint64_t h = 0x5eedc0de ^ cfg.svc.slots;
    for (std::uint32_t s = 0; s < cfg.svc.slots; ++s) {
        result.final_state[s] = svc_arena()[std::size_t{s} * 8];
        h = util::mix64(h ^
                        (result.final_state[s] + s * 0x9e3779b97f4a7c15ULL));
    }
    result.state_hash = h;

    result.commit_log = svc.commit_log();
    const ServiceReport rep = svc.finish(/*complete=*/!result.cancelled);
    result.counters = rep.counters;
    result.ledger_ok = rep.ledger_ok;
    result.ledger_note = rep.ledger_note;
    result.stats = rep.stm;
    result.signature = coverage.signature(result.stats);
    return result;
}

// ---------------------------------------------------------------------------
// The service oracle
// ---------------------------------------------------------------------------

std::optional<std::string> check_service_consistent(
    const SvcHarnessConfig& cfg, const ServiceRunResult& run) {
    if (!run.ledger_ok) {
        return "conservation ledger: " + run.ledger_note;
    }
    const SvcCounters& c = run.counters;
    const std::uint64_t total =
        std::uint64_t{cfg.svc.clients} * cfg.svc.requests_per_client;
    if (!run.cancelled && c.submitted != total) {
        return "complete run submitted " + std::to_string(c.submitted) +
               " requests, expected " + std::to_string(total);
    }

    // Commit log vs counters: every completed request is in the log; a kill
    // may strand at most one committed-but-uncounted batch per dispatcher.
    std::uint64_t logged = 0;
    for (const SvcCommit& cm : run.commit_log) {
        logged += cm.request_ids.size();
    }
    const std::uint64_t dispatcher_window =
        std::uint64_t{cfg.svc.dispatchers} * cfg.svc.batch;
    if (logged < c.completed) {
        return "counters claim " + std::to_string(c.completed) +
               " completions but the commit log holds " +
               std::to_string(logged);
    }
    if (run.cancelled ? logged - c.completed > dispatcher_window
                      : logged != c.completed) {
        return "commit log holds " + std::to_string(logged) +
               " requests vs " + std::to_string(c.completed) +
               " counted completions" +
               (run.cancelled ? " (> one batch per dispatcher in flight)"
                              : " on a complete run");
    }

    // At-most-once execution, and only requests that exist.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(logged) * 2);
    for (const SvcCommit& cm : run.commit_log) {
        if (cm.dispatcher >= cfg.svc.dispatchers) {
            return "commit names unknown dispatcher " +
                   std::to_string(cm.dispatcher);
        }
        for (const std::uint64_t id : cm.request_ids) {
            if (id >= total) {
                return "commit log names unknown request " +
                       std::to_string(id);
            }
            if (!seen.insert(id).second) {
                return "request " + std::to_string(id) +
                       " executed twice (appears in two commits)";
            }
        }
    }

    // Serial replay in commit order: recorded reads/writes must be exactly
    // what the deterministic request logic produces against the serial
    // state, and the final memory must match — for killed runs too (aborted
    // attempts roll back, so memory holds exactly the committed prefix).
    std::vector<std::uint64_t> state(cfg.svc.slots, 0);
    for (std::size_t pos = 0; pos < run.commit_log.size(); ++pos) {
        const SvcCommit& cm = run.commit_log[pos];
        std::size_t ri = 0;
        std::size_t wi = 0;
        for (const std::uint64_t id : cm.request_ids) {
            const std::uint64_t seed = svc_request_seed(cfg.svc.seed, id);
            for (std::uint32_t i = 0; i < cfg.svc.ops_per_request; ++i) {
                const std::uint32_t slot =
                    svc_op_slot(seed, i, cfg.svc.slots);
                if (cfg.svc.rmw) {
                    if (ri >= cm.reads.size() ||
                        cm.reads[ri].slot != slot) {
                        return "commit #" + std::to_string(pos + 1) +
                               ": read log does not match request " +
                               std::to_string(id);
                    }
                    if (cm.reads[ri].value != state[slot]) {
                        return "commit #" + std::to_string(pos + 1) +
                               " (request " + std::to_string(id) +
                               ") read slot " + std::to_string(slot) + " = " +
                               std::to_string(cm.reads[ri].value) +
                               " but the serial replay in commit order "
                               "gives " +
                               std::to_string(state[slot]) +
                               " — not serializable";
                    }
                    ++ri;
                }
                const std::uint64_t nv =
                    svc_op_value(seed, i, state[slot], cfg.svc.rmw);
                if (wi >= cm.writes.size() || cm.writes[wi].slot != slot ||
                    cm.writes[wi].value != nv) {
                    return "commit #" + std::to_string(pos + 1) +
                           " (request " + std::to_string(id) +
                           ") wrote a value the serial replay does not "
                           "produce";
                }
                ++wi;
                state[slot] = nv;
            }
        }
        if (ri != cm.reads.size() || wi != cm.writes.size()) {
            return "commit #" + std::to_string(pos + 1) +
                   " recorded more accesses than its requests perform";
        }
    }
    if (state != run.final_state) {
        std::string diff;
        for (std::uint32_t s = 0; s < cfg.svc.slots; ++s) {
            if (state[s] != run.final_state[s]) {
                diff += " slot " + std::to_string(s) + ": serial " +
                        std::to_string(state[s]) + " vs actual " +
                        std::to_string(run.final_state[s]) + ";";
            }
        }
        return "final state diverges from the serial replay of the commit "
               "log:" +
               diff;
    }
    return std::nullopt;
}

std::optional<std::string> check_service_kill_point(
    const SvcHarnessConfig& cfg, const std::string& schedule,
    std::uint64_t kill_step) {
    SvcHarnessConfig killed = cfg;
    killed.step_limit = kill_step;
    config::Config sc;
    sc.set("sched", "replay");
    sc.set("schedule", schedule);
    const auto sch = sched::make_schedule(sc, 0);
    const ServiceRunResult run = run_service_schedule(killed, *sch);
    return check_service_consistent(killed, run);
}

// ---------------------------------------------------------------------------
// Guided fuzzing over service schedules
// ---------------------------------------------------------------------------

sched::FuzzResult fuzz_service(const SvcHarnessConfig& cfg,
                               const sched::FuzzOptions& opts,
                               sched::Corpus& corpus) {
    SvcHarnessConfig run_cfg = cfg;
    if (opts.step_limit != 0) {
        run_cfg.step_limit = std::min(cfg.step_limit, opts.step_limit);
    }
    sched::FuzzResult out;
    util::Xoshiro256 rng(opts.seed);

    const auto replay = [&](const std::string& picks) {
        config::Config sc;
        sc.set("sched", "replay");
        sc.set("schedule", picks);
        const auto sch = sched::make_schedule(sc, 0);
        return run_service_schedule(run_cfg, *sch);
    };

    const auto oracle = [&](const ServiceRunResult& run) {
        if (const auto error = check_service_consistent(run_cfg, run)) {
            sched::Violation v;
            v.schedule = run.schedule;
            v.repro = svc_harness_repro_line(cfg, run.schedule);
            v.message = *error + "\n  repro: " + v.repro;
            out.violations.push_back(std::move(v));
        }
    };

    const auto retain = [&](const ServiceRunResult& run) {
        std::string kept = run.schedule;
        if (opts.shrink && kept.size() > 1 && out.runs < opts.budget) {
            const std::uint64_t cap =
                std::min(opts.shrink_probes, opts.budget - out.runs);
            const auto same_signature = [&](const std::string& cand) {
                const ServiceRunResult probe = replay(cand);
                ++out.runs;
                out.stats.merge(probe.stats);
                out.sites_seen |= probe.sites_seen;
                oracle(probe);
                (void)corpus.observe(probe.signature);
                return probe.signature == run.signature;
            };
            kept = sched::shrink_schedule(std::move(kept), same_signature, cap);
        }
        corpus.add(std::move(kept), run.signature);
    };

    config::Config random_cfg;
    random_cfg.set("sched", "random");
    for (std::uint64_t i = 0; i < opts.init && out.runs < opts.budget; ++i) {
        const auto sch = sched::make_schedule(
            random_cfg, util::mix64(opts.seed ^ (i + 1)));
        const ServiceRunResult run = run_service_schedule(run_cfg, *sch);
        ++out.runs;
        out.stats.merge(run.stats);
        out.sites_seen |= run.sites_seen;
        oracle(run);
        if (opts.stop_at_first && !out.violations.empty()) return out;
        if (corpus.observe(run.signature)) retain(run);
    }

    constexpr std::size_t kNoBase = static_cast<std::size_t>(-1);
    std::uint64_t since_sync = 0;
    std::uint64_t since_kill = 0;
    while (out.runs < opts.budget &&
           !(opts.stop_at_first && !out.violations.empty())) {
        std::size_t base_idx = kNoBase;
        ServiceRunResult run;
        if (corpus.empty() || rng.below(8) == 0) {
            const auto sch = sched::make_schedule(random_cfg, rng());
            run = run_service_schedule(run_cfg, *sch);
        } else {
            base_idx = corpus.select(rng);
            ++corpus.entry(base_idx).trials;
            const std::string mutant = sched::mutate_schedule(
                corpus.entry(base_idx).schedule,
                corpus.entry(corpus.select(rng)).schedule, cfg.threads(), rng);
            run = replay(mutant);
        }
        ++out.runs;
        ++since_sync;
        out.stats.merge(run.stats);
        out.sites_seen |= run.sites_seen;
        oracle(run);
        if (opts.stop_at_first && !out.violations.empty()) return out;
        if (corpus.observe(run.signature)) {
            ++out.new_coverage_mutants;
            if (base_idx != kNoBase) ++corpus.entry(base_idx).yield;
            retain(run);
        }

        ++since_kill;
        if (opts.kill_every != 0 && since_kill >= opts.kill_every &&
            run.steps > 0 && out.runs < opts.budget) {
            since_kill = 0;
            const std::uint64_t kill = 1 + rng.below(run.steps);
            ++out.runs;
            ++out.kill_checks;
            if (const auto error = check_service_kill_point(
                    run_cfg, run.schedule, kill)) {
                sched::Violation v;
                v.schedule = run.schedule;
                v.repro = svc_harness_repro_line(cfg, run.schedule) +
                          " --kill_step=" + std::to_string(kill);
                v.message = "kill-point (step " + std::to_string(kill) +
                            "): " + *error + "\n  repro: " + v.repro;
                out.violations.push_back(std::move(v));
            }
        }

        if (!corpus.dir().empty() && opts.sync_every != 0 &&
            since_sync >= opts.sync_every) {
            since_sync = 0;
            (void)corpus.sync();
        }
    }
    if (!corpus.dir().empty()) (void)corpus.sync();
    return out;
}

}  // namespace tmb::svc
