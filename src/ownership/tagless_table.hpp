// tagless_table.hpp — the tagless ownership table of paper Fig. 1.
//
// Each entry is {mode, owner-or-sharers}; the accessed address is NOT
// recorded, so all blocks hashing to an entry share its permission state.
// Cross-transaction aliasing with at least one writer is conservatively a
// conflict — the false conflicts whose rate the paper models.
//
// Concurrency note: this class is the *organization* under study and is
// used single-threaded by the simulators; the STM wraps it in its own
// synchronization (one global table lock suffices for the block-granular
// acquire path and keeps the organization's behaviour unpolluted by
// lock-splitting artifacts).
#pragma once

#include <cstdint>
#include <vector>

#include "ownership/ownership.hpp"

namespace tmb::ownership {

class TaglessTable {
public:
    explicit TaglessTable(TableConfig config);

    /// Acquires read permission on the entry `block` hashes to.
    /// Fails iff another transaction holds the entry in Write mode.
    AcquireResult acquire_read(TxId tx, std::uint64_t block);

    /// Acquires write permission on the entry `block` hashes to.
    /// Fails iff any other transaction holds the entry (read or write).
    /// Upgrades a sole-reader hold by `tx` itself.
    AcquireResult acquire_write(TxId tx, std::uint64_t block);

    /// Releases `tx`'s hold on the entry `block` hashes to. Multiple blocks
    /// of one transaction aliasing to one entry share a single hold, so
    /// release is idempotent per entry; call at commit/abort time only.
    /// `mode` is accepted for interface parity and ignored (the entry knows).
    void release(TxId tx, std::uint64_t block, Mode mode);

    /// Entry index for a block (exposed so experiments can reason about
    /// aliasing without duplicating the hash).
    [[nodiscard]] std::uint64_t index_of(std::uint64_t block) const noexcept;

    /// Inspection (tests / stats).
    [[nodiscard]] Mode mode_at(std::uint64_t index) const noexcept;
    /// Permission state a non-transactional access to `block` would observe
    /// — the entry's mode, since a tagless entry speaks for every aliasing
    /// block (the strong-isolation hazard of paper §6).
    [[nodiscard]] Mode mode_of_block(std::uint64_t block) const noexcept {
        return mode_at(index_of(block));
    }
    [[nodiscard]] std::uint64_t sharers_at(std::uint64_t index) const noexcept;
    [[nodiscard]] TxId writer_at(std::uint64_t index) const noexcept;
    /// Number of non-Free entries; O(1) (maintained incrementally so the
    /// closed-system simulator can sample occupancy every tick).
    [[nodiscard]] std::uint64_t occupied_entries() const noexcept { return occupied_; }

    [[nodiscard]] std::uint64_t entry_count() const noexcept { return config_.entries; }
    [[nodiscard]] const TableConfig& config() const noexcept { return config_; }
    [[nodiscard]] TableCounters counters() const noexcept { return counters_; }
    /// Largest number of concurrently live transactions (TxIds [0, max_tx)).
    [[nodiscard]] TxId max_tx() const noexcept { return kMaxTx; }

    /// Resets all entries to Free (counters are preserved).
    void clear();

private:
    struct Entry {
        Mode mode = Mode::kFree;
        TxId writer = 0;
        std::uint64_t sharers = 0;  ///< bitmap of reading transactions
    };

    TableConfig config_;
    util::BlockHasher hasher_;
    std::vector<Entry> entries_;
    TableCounters counters_;
    std::uint64_t occupied_ = 0;
};

static_assert(OwnershipTable<TaglessTable>);

}  // namespace tmb::ownership
