#include "ownership/atomic_tagless_table.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace tmb::ownership {

AtomicTaglessTable::AtomicTaglessTable(TableConfig config)
    : config_(config),
      hasher_(config.hash, config.entries),
      entries_(config.entries) {
    if (config_.entries == 0) throw std::invalid_argument("table must have entries");
    for (auto& e : entries_) e.store(kFreeWord, std::memory_order_relaxed);
}

std::uint64_t AtomicTaglessTable::index_of(std::uint64_t block) const noexcept {
    return hasher_(block);
}

namespace {

/// TxIds 62 and 63 would alias the mode bits of the entry word (tx_bit(62)
/// = 1<<62 lands in the mode field), silently corrupting the entry; fail
/// fast instead.
void check_tx(TxId tx) {
    if (tx >= kMaxAtomicTx) {
        throw std::out_of_range(
            "AtomicTaglessTable: TxId " + std::to_string(tx) +
            " exceeds the atomic table's capacity of " +
            std::to_string(kMaxAtomicTx) +
            " (two bits of the entry word encode the mode)");
    }
}

}  // namespace

AcquireResult AtomicTaglessTable::acquire_read(TxId tx, std::uint64_t block) {
    check_tx(tx);
    counter_shards_[tx].read_acquires.fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>& entry = entries_[index_of(block)];
    std::uint64_t word = entry.load(std::memory_order_acquire);
    for (;;) {
        switch (mode_of(word)) {
            case Mode::kFree:
                if (entry.compare_exchange_weak(word, pack(Mode::kRead, tx_bit(tx)),
                                                std::memory_order_acq_rel)) {
                    return {.ok = true};
                }
                break;  // word reloaded; retry
            case Mode::kRead: {
                const std::uint64_t desired =
                    pack(Mode::kRead, payload_of(word) | tx_bit(tx));
                if (desired == word ||
                    entry.compare_exchange_weak(word, desired,
                                                std::memory_order_acq_rel)) {
                    return {.ok = true};
                }
                break;
            }
            case Mode::kWrite: {
                const auto writer = static_cast<TxId>(payload_of(word));
                if (writer == tx) return {.ok = true};
                counter_shards_[tx].conflicts.fetch_add(1, std::memory_order_relaxed);
                return {.ok = false, .conflicting = tx_bit(writer)};
            }
        }
    }
}

AcquireResult AtomicTaglessTable::acquire_write(TxId tx, std::uint64_t block) {
    check_tx(tx);
    counter_shards_[tx].write_acquires.fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>& entry = entries_[index_of(block)];
    std::uint64_t word = entry.load(std::memory_order_acquire);
    for (;;) {
        switch (mode_of(word)) {
            case Mode::kFree:
                if (entry.compare_exchange_weak(word, pack(Mode::kWrite, tx),
                                                std::memory_order_acq_rel)) {
                    return {.ok = true};
                }
                break;
            case Mode::kRead: {
                const std::uint64_t others = payload_of(word) & ~tx_bit(tx);
                if (others != 0) {
                    counter_shards_[tx].conflicts.fetch_add(1, std::memory_order_relaxed);
                    return {.ok = false, .conflicting = others};
                }
                if (entry.compare_exchange_weak(word, pack(Mode::kWrite, tx),
                                                std::memory_order_acq_rel)) {
                    return {.ok = true};  // sole-reader upgrade
                }
                break;
            }
            case Mode::kWrite: {
                const auto writer = static_cast<TxId>(payload_of(word));
                if (writer == tx) return {.ok = true};
                counter_shards_[tx].conflicts.fetch_add(1, std::memory_order_relaxed);
                return {.ok = false, .conflicting = tx_bit(writer)};
            }
        }
    }
}

void AtomicTaglessTable::release(TxId tx, std::uint64_t block, Mode /*mode*/) {
    counter_shards_[tx & 63].releases.fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>& entry = entries_[index_of(block)];
    std::uint64_t word = entry.load(std::memory_order_acquire);
    for (;;) {
        switch (mode_of(word)) {
            case Mode::kFree:
                return;  // aliased double-release: tolerated
            case Mode::kRead: {
                const std::uint64_t remaining = payload_of(word) & ~tx_bit(tx);
                if (remaining == payload_of(word)) return;  // not a sharer
                const std::uint64_t desired =
                    remaining == 0 ? kFreeWord : pack(Mode::kRead, remaining);
                if (entry.compare_exchange_weak(word, desired,
                                                std::memory_order_acq_rel)) {
                    return;
                }
                break;
            }
            case Mode::kWrite:
                if (static_cast<TxId>(payload_of(word)) != tx) return;
                if (entry.compare_exchange_weak(word, kFreeWord,
                                                std::memory_order_acq_rel)) {
                    return;
                }
                break;
        }
    }
}

TableCounters AtomicTaglessTable::counters() const noexcept {
    TableCounters out;
    for (const CounterShard& shard : counter_shards_) {
        out.read_acquires += shard.read_acquires.load(std::memory_order_relaxed);
        out.write_acquires += shard.write_acquires.load(std::memory_order_relaxed);
        out.conflicts += shard.conflicts.load(std::memory_order_relaxed);
        out.releases += shard.releases.load(std::memory_order_relaxed);
    }
    return out;
}

std::uint64_t AtomicTaglessTable::occupied_entries() const noexcept {
    std::uint64_t n = 0;
    for (const auto& e : entries_) {
        n += mode_of(e.load(std::memory_order_relaxed)) != Mode::kFree ? 1u : 0u;
    }
    return n;
}

void AtomicTaglessTable::clear() {
    for (auto& e : entries_) e.store(kFreeWord, std::memory_order_relaxed);
}

Mode AtomicTaglessTable::mode_at(std::uint64_t index) const noexcept {
    return mode_of(entries_[index].load(std::memory_order_acquire));
}

std::uint64_t AtomicTaglessTable::sharers_at(std::uint64_t index) const noexcept {
    const std::uint64_t word = entries_[index].load(std::memory_order_acquire);
    return mode_of(word) == Mode::kRead
               ? static_cast<std::uint64_t>(std::popcount(payload_of(word)))
               : 0;
}

TxId AtomicTaglessTable::writer_at(std::uint64_t index) const noexcept {
    const std::uint64_t word = entries_[index].load(std::memory_order_acquire);
    return mode_of(word) == Mode::kWrite ? static_cast<TxId>(payload_of(word)) : 0;
}

}  // namespace tmb::ownership
