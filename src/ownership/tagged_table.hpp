// tagged_table.hpp — the tagged, chaining ownership table of paper Fig. 7.
//
// Each first-level slot holds either zero, one (inline), or several
// (chained) *ownership records*, each tagged with the block it describes.
// Distinct blocks that alias in the hash therefore get distinct records and
// never produce false conflicts; the cost is an occasional chain traversal.
//
// The paper's space optimization — storing only the tag bits not implied by
// the slot index and block offset (e.g. 14 bits on a 32-bit machine with
// 64-byte blocks and a 4096-entry table) — is reported by `tag_bits()`; the
// in-memory representation keeps the full block address for simplicity,
// which changes no observable behaviour.
//
// Storage mirrors Fig. 7's record-or-pointer union: each slot holds its
// first record INLINE (§5: "the overwhelming majority of entries store 0 or
// 1 records", so the common acquire touches exactly one cache line and
// allocates nothing) and spills chained records into a lazily allocated
// overflow vector whose capacity is retained after release — steady-state
// acquire/release cycles are allocation-free even under chaining.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ownership/ownership.hpp"
#include "util/histogram.hpp"

namespace tmb::ownership {

class TaggedTable {
public:
    explicit TaggedTable(TableConfig config);

    /// Acquire read permission on `block`'s own record. Fails iff another
    /// transaction holds a Write record for this exact block.
    AcquireResult acquire_read(TxId tx, std::uint64_t block);

    /// Acquire write permission on `block`'s own record. Fails iff any other
    /// transaction holds this exact block (read or write).
    AcquireResult acquire_write(TxId tx, std::uint64_t block);

    /// Releases `tx`'s hold on `block`'s record; empty records are unlinked.
    void release(TxId tx, std::uint64_t block, Mode mode);

    [[nodiscard]] std::uint64_t index_of(std::uint64_t block) const noexcept;

    /// Permission state a non-transactional access to `block` would observe:
    /// the mode of `block`'s own record, kFree when none exists. Aliasing
    /// blocks have separate records, so (unlike a tagless table) an alias
    /// never makes a non-transactional access appear conflicting.
    [[nodiscard]] Mode mode_of_block(std::uint64_t block) const noexcept;

    /// Residual tag width for a given architecture address width and block
    /// size — the paper's §5 space-overhead argument.
    [[nodiscard]] unsigned tag_bits(unsigned address_bits,
                                    unsigned block_offset_bits) const noexcept;

    // --- inspection ---
    [[nodiscard]] std::uint64_t entry_count() const noexcept { return config_.entries; }
    [[nodiscard]] const TableConfig& config() const noexcept { return config_; }
    [[nodiscard]] TableCounters counters() const noexcept { return counters_; }
    /// Largest number of concurrently live transactions (TxIds [0, max_tx)).
    [[nodiscard]] TxId max_tx() const noexcept { return kMaxTx; }
    [[nodiscard]] std::uint64_t record_count() const noexcept { return live_records_; }
    /// Live ownership records — the tagged analog of a tagless table's
    /// occupied entries (each held block has its own record, chained records
    /// counted individually). O(1); lets occupancy-sampling simulators run
    /// any organization through one interface.
    [[nodiscard]] std::uint64_t occupied_entries() const noexcept {
        return live_records_;
    }
    /// Slots currently holding >= 2 records (i.e. actually chained).
    [[nodiscard]] std::uint64_t chained_slots() const noexcept;
    /// Distribution of records per slot over the whole table.
    [[nodiscard]] util::Histogram chain_length_histogram() const;
    /// Total record-comparison steps performed by acquires (probe cost).
    [[nodiscard]] std::uint64_t probe_steps() const noexcept { return probe_steps_; }
    /// Acquires that had to look past the first record (alias traversals).
    [[nodiscard]] std::uint64_t alias_traversals() const noexcept {
        return alias_traversals_;
    }

    void clear();

private:
    struct Record {
        std::uint64_t block = 0;   ///< full tag (see header comment)
        Mode mode = Mode::kFree;
        TxId writer = 0;
        std::uint64_t sharers = 0;
    };
    /// One first-level entry: the first record inline (live iff its mode is
    /// not kFree), chained records in `overflow` (allocated on first chain,
    /// buffer kept across releases). Invariant: overflow is non-empty only
    /// while the inline record is live (release promotes a chained record
    /// into a freed inline slot).
    struct Slot {
        Record first;
        std::unique_ptr<std::vector<Record>> overflow;

        [[nodiscard]] std::uint64_t live() const noexcept {
            return (first.mode != Mode::kFree ? 1u : 0u) +
                   (overflow ? overflow->size() : 0u);
        }
    };

    Record* find(Slot& slot, std::uint64_t block);
    Record& find_or_create(Slot& slot, std::uint64_t block);
    void remove(Slot& slot, Record& record);

    TableConfig config_;
    util::BlockHasher hasher_;
    std::vector<Slot> slots_;
    TableCounters counters_;
    std::uint64_t live_records_ = 0;
    std::uint64_t probe_steps_ = 0;
    std::uint64_t alias_traversals_ = 0;
};

static_assert(OwnershipTable<TaggedTable>);

}  // namespace tmb::ownership
