#include "ownership/any_table.hpp"

#include <stdexcept>

#include "ownership/atomic_tagless_table.hpp"
#include "ownership/tagged_table.hpp"
#include "ownership/tagless_table.hpp"

namespace tmb::ownership {

namespace {

template <OwnershipTable Table>
class AnyTableImpl final : public AnyTable {
public:
    AnyTableImpl(std::string name, TableConfig config)
        : name_(std::move(name)), table_(config) {}

    AcquireResult acquire_read(TxId tx, std::uint64_t block) override {
        return table_.acquire_read(tx, block);
    }
    AcquireResult acquire_write(TxId tx, std::uint64_t block) override {
        return table_.acquire_write(tx, block);
    }
    void release(TxId tx, std::uint64_t block, Mode mode) override {
        table_.release(tx, block, mode);
    }
    [[nodiscard]] std::uint64_t entry_count() const noexcept override {
        return table_.entry_count();
    }
    [[nodiscard]] TableCounters counters() const noexcept override {
        return table_.counters();
    }
    [[nodiscard]] std::uint64_t index_of(
        std::uint64_t block) const noexcept override {
        return table_.index_of(block);
    }
    [[nodiscard]] std::uint64_t occupied_entries() const noexcept override {
        return table_.occupied_entries();
    }
    [[nodiscard]] Mode mode_of_block(
        std::uint64_t block) const noexcept override {
        return table_.mode_of_block(block);
    }
    [[nodiscard]] TxId max_tx() const noexcept override {
        return table_.max_tx();
    }
    void clear() override { table_.clear(); }
    [[nodiscard]] std::string_view name() const noexcept override {
        return name_;
    }

private:
    std::string name_;
    Table table_;
};

template <OwnershipTable Table>
TableRegistry::Factory builtin_factory(std::string name) {
    return [name = std::move(name)](const config::Config& cfg) {
        return std::make_unique<AnyTableImpl<Table>>(name,
                                                     table_config_from(cfg));
    };
}

/// Registers the built-in organizations exactly once; every public entry
/// point funnels through this so the registry is populated regardless of
/// static-initialization order or which translation units the linker kept.
TableRegistry& registry() {
    static const bool bootstrapped = [] {
        auto& r = TableRegistry::instance();
        r.add_default("tagless", builtin_factory<TaglessTable>("tagless"));
        r.add_default("tagged", builtin_factory<TaggedTable>("tagged"));
        r.add_default("atomic_tagless",
              builtin_factory<AtomicTaglessTable>("atomic_tagless"));
        return true;
    }();
    (void)bootstrapped;
    return TableRegistry::instance();
}

}  // namespace

std::string_view to_string(TableKind kind) noexcept {
    switch (kind) {
        case TableKind::kTagless: return "tagless";
        case TableKind::kTagged: return "tagged";
        case TableKind::kAtomicTagless: return "atomic_tagless";
    }
    return "unknown";
}

TableKind table_kind_from_string(std::string_view name) {
    if (name == "tagless") return TableKind::kTagless;
    if (name == "tagged") return TableKind::kTagged;
    if (name == "atomic_tagless" || name == "atomic") {
        return TableKind::kAtomicTagless;
    }
    throw std::invalid_argument(
        "unknown table organization '" + std::string(name) +
        "' (known: tagless, tagged, atomic_tagless)");
}

std::vector<std::string> table_names() { return registry().names(); }

TableConfig table_config_from(const config::Config& cfg) {
    TableConfig out;
    out.entries = cfg.get_u64("entries", out.entries);
    out.hash = util::hash_kind_from_string(
        cfg.get("hash", util::to_string(out.hash)));
    return out;
}

std::unique_ptr<AnyTable> make_table(const config::Config& cfg) {
    return registry().create(cfg.get("table", "tagless"), cfg);
}

std::unique_ptr<AnyTable> make_table(std::string_view name,
                                     TableConfig config) {
    config::Config cfg;
    cfg.set("table", name);
    cfg.set("entries", std::to_string(config.entries));
    cfg.set("hash", util::to_string(config.hash));
    return make_table(cfg);
}

std::unique_ptr<AnyTable> make_table(TableKind kind, TableConfig config) {
    return make_table(to_string(kind), config);
}

}  // namespace tmb::ownership
