#include "ownership/any_table.hpp"

namespace tmb::ownership {

namespace {

template <typename Table>
class AnyTableImpl final : public AnyTable {
public:
    AnyTableImpl(TableKind kind, TableConfig config)
        : kind_(kind), table_(config) {}

    AcquireResult acquire_read(TxId tx, std::uint64_t block) override {
        return table_.acquire_read(tx, block);
    }
    AcquireResult acquire_write(TxId tx, std::uint64_t block) override {
        return table_.acquire_write(tx, block);
    }
    void release(TxId tx, std::uint64_t block, Mode mode) override {
        table_.release(tx, block, mode);
    }
    [[nodiscard]] std::uint64_t entry_count() const noexcept override {
        return table_.entry_count();
    }
    [[nodiscard]] TableCounters counters() const noexcept override {
        return table_.counters();
    }
    void clear() override { table_.clear(); }
    [[nodiscard]] TableKind kind() const noexcept override { return kind_; }

private:
    TableKind kind_;
    Table table_;
};

}  // namespace

std::string_view to_string(TableKind kind) noexcept {
    switch (kind) {
        case TableKind::kTagless: return "tagless";
        case TableKind::kTagged: return "tagged";
    }
    return "unknown";
}

std::unique_ptr<AnyTable> make_table(TableKind kind, TableConfig config) {
    switch (kind) {
        case TableKind::kTagless:
            return std::make_unique<AnyTableImpl<TaglessTable>>(kind, config);
        case TableKind::kTagged:
            return std::make_unique<AnyTableImpl<TaggedTable>>(kind, config);
    }
    return nullptr;
}

}  // namespace tmb::ownership
