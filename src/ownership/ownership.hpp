// ownership.hpp — common vocabulary for ownership tables.
//
// A word-based STM tracks per-block read/write permissions in a hashed
// *ownership table* (paper §2.1, Fig. 1). Transactions acquire read or write
// ownership of the entry their block hashes to; conflicting acquisitions
// force an abort. Two organizations are implemented:
//
//   * `TaglessTable` (Fig. 1): no tags; all blocks hashing to an entry are
//     indistinguishable → aliasing causes FALSE conflicts (the paper's
//     subject).
//   * `TaggedTable` (Fig. 7): tags + chaining; aliases get separate records
//     → no false conflicts, occasional chains.
//
// Both expose the same acquire/release interface (the `OwnershipTable`
// concept below) so simulators, the STM and the benches are generic over the
// organization.
#pragma once

#include <concepts>
#include <cstdint>

#include "util/hash.hpp"

namespace tmb::ownership {

/// Transaction identifier. Tables track holders in a 64-bit bitmap, so at
/// most 64 concurrently live transactions are supported — far beyond the
/// paper's experiments (C <= 8) and plenty for a per-thread STM. Individual
/// organizations may support fewer (the atomic table spends two bitmap bits
/// on the entry mode); query `max_tx()` instead of assuming this constant.
using TxId = std::uint32_t;
inline constexpr TxId kMaxTx = 64;

/// Entry/record access mode.
enum class Mode : std::uint8_t { kFree = 0, kRead = 1, kWrite = 2 };

/// Outcome of an acquire operation.
struct AcquireResult {
    bool ok = false;
    /// Bitmap of transactions (bit i = TxId i) that hold the entry/record in
    /// a conflicting mode. Empty when ok.
    std::uint64_t conflicting = 0;

    [[nodiscard]] explicit operator bool() const noexcept { return ok; }
};

/// Table configuration shared by both organizations.
struct TableConfig {
    std::uint64_t entries = 4096;  ///< number of first-level slots (N)
    util::HashKind hash = util::HashKind::kMix64;
};

/// Statistics counters maintained by both organizations.
struct TableCounters {
    std::uint64_t read_acquires = 0;
    std::uint64_t write_acquires = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t releases = 0;
};

/// The shape every ownership-table organization satisfies. Acquire calls are
/// idempotent per (tx, block): re-acquiring a held permission succeeds
/// without extra bookkeeping. `release(tx, block, mode)` must be called once
/// per distinct (block, strongest-mode) the transaction acquired; releasing
/// a write that was upgraded from a read releases everything.
template <typename T>
concept OwnershipTable = requires(T t, const T ct, TxId tx, std::uint64_t block) {
    { t.acquire_read(tx, block) } -> std::same_as<AcquireResult>;
    { t.acquire_write(tx, block) } -> std::same_as<AcquireResult>;
    { t.release(tx, block, Mode::kRead) } -> std::same_as<void>;
    { ct.entry_count() } -> std::convertible_to<std::uint64_t>;
    { ct.counters() } -> std::convertible_to<TableCounters>;
    { ct.index_of(block) } -> std::convertible_to<std::uint64_t>;
    { ct.occupied_entries() } -> std::convertible_to<std::uint64_t>;
    { ct.mode_of_block(block) } -> std::same_as<Mode>;
    { ct.max_tx() } -> std::convertible_to<TxId>;
    { t.clear() } -> std::same_as<void>;
};

/// Bit helper for holder bitmaps.
[[nodiscard]] constexpr std::uint64_t tx_bit(TxId tx) noexcept {
    return std::uint64_t{1} << (tx & 63);
}

}  // namespace tmb::ownership
