// atomic_tagless_table.hpp — a lock-free concurrent tagless ownership table.
//
// `TaglessTable` is the faithful single-threaded model of paper Fig. 1 used
// by the simulators (and by the STM under one global lock). This class is
// the production-concurrency variant: each entry is a single atomic word
// manipulated with CAS, so transactions on different threads acquire and
// release entries without any shared lock.
//
// Entry word layout (64 bits):
//   bits 63..62  mode: 0 = Free, 1 = Read, 2 = Write
//   bits 61..0   Read:  sharer bitmap (one bit per TxId; ids 0..61)
//                Write: writer TxId
//
// The single-word layout is exactly why tagless tables appeal to STM
// implementers (paper §2.1: no tags, no chains, one CAS per acquire) — and
// it changes nothing about their false-conflict pathology, which this class
// inherits by construction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "ownership/ownership.hpp"

namespace tmb::ownership {

/// Maximum concurrent transactions for the atomic table (sharer bitmap is
/// 62 bits wide; two bits of the word encode the mode).
inline constexpr TxId kMaxAtomicTx = 62;

class AtomicTaglessTable {
public:
    explicit AtomicTaglessTable(TableConfig config);

    AtomicTaglessTable(const AtomicTaglessTable&) = delete;
    AtomicTaglessTable& operator=(const AtomicTaglessTable&) = delete;

    /// Lock-free; linearizes at a successful CAS (or at the load that
    /// observes a conflicting state). Throws std::out_of_range when
    /// `tx >= kMaxAtomicTx`: a TxId of 62 or 63 would set a mode bit in the
    /// entry word instead of a sharer bit, silently corrupting the entry.
    AcquireResult acquire_read(TxId tx, std::uint64_t block);
    AcquireResult acquire_write(TxId tx, std::uint64_t block);
    void release(TxId tx, std::uint64_t block, Mode mode);

    [[nodiscard]] std::uint64_t index_of(std::uint64_t block) const noexcept;

    [[nodiscard]] std::uint64_t entry_count() const noexcept { return config_.entries; }
    [[nodiscard]] const TableConfig& config() const noexcept { return config_; }
    [[nodiscard]] TableCounters counters() const noexcept;
    [[nodiscard]] std::uint64_t occupied_entries() const noexcept;
    /// Largest number of concurrently live transactions: the sharer bitmap
    /// is only 62 bits wide, so TxIds 62 and 63 are NOT usable here even
    /// though other organizations accept them.
    [[nodiscard]] TxId max_tx() const noexcept { return kMaxAtomicTx; }

    /// Not thread-safe; call only at quiescent points.
    void clear();

    // Inspection for tests (racy by nature; exact only when quiescent).
    [[nodiscard]] Mode mode_at(std::uint64_t index) const noexcept;
    /// Permission state a non-transactional access to `block` would observe.
    [[nodiscard]] Mode mode_of_block(std::uint64_t block) const noexcept {
        return mode_at(index_of(block));
    }
    [[nodiscard]] std::uint64_t sharers_at(std::uint64_t index) const noexcept;
    [[nodiscard]] TxId writer_at(std::uint64_t index) const noexcept;

private:
    static constexpr std::uint64_t kModeShift = 62;
    static constexpr std::uint64_t kPayloadMask = (std::uint64_t{1} << 62) - 1;
    static constexpr std::uint64_t kFreeWord = 0;

    [[nodiscard]] static constexpr std::uint64_t pack(Mode mode,
                                                      std::uint64_t payload) {
        return (static_cast<std::uint64_t>(mode) << kModeShift) |
               (payload & kPayloadMask);
    }
    [[nodiscard]] static constexpr Mode mode_of(std::uint64_t word) {
        return static_cast<Mode>(word >> kModeShift);
    }
    [[nodiscard]] static constexpr std::uint64_t payload_of(std::uint64_t word) {
        return word & kPayloadMask;
    }

    /// Per-TxId statistics shard: counters are bumped on every acquire, so
    /// a single shared set would ping-pong one cache line between all
    /// threads; each transaction writes its own line instead and counters()
    /// sums at read time. Sized kMaxTx (not kMaxAtomicTx) so release() —
    /// which tolerates any TxId — can index with `tx & 63` unconditionally.
    struct alignas(64) CounterShard {
        std::atomic<std::uint64_t> read_acquires{0};
        std::atomic<std::uint64_t> write_acquires{0};
        std::atomic<std::uint64_t> conflicts{0};
        std::atomic<std::uint64_t> releases{0};
    };

    TableConfig config_;
    util::BlockHasher hasher_;
    std::vector<std::atomic<std::uint64_t>> entries_;
    std::array<CounterShard, kMaxTx> counter_shards_;
};

static_assert(OwnershipTable<AtomicTaglessTable>);

}  // namespace tmb::ownership
