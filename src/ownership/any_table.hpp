// any_table.hpp — type-erased ownership table, selected by name at runtime.
//
// Simulators, the hybrid-TM model, benches, examples and tools all construct
// their ownership table through this interface so that every workload is
// generic over the metadata organization — the paper's central ablation.
// Three organizations are built in, registered in the process-wide
// `config::Registry<AnyTable>` under these names:
//
//   "tagless"         — paper Fig. 1 (no tags; aliasing causes FALSE conflicts)
//   "tagged"          — paper Fig. 7 (tags + chaining; no false conflicts)
//   "atomic_tagless"  — Fig. 1 organization with lock-free single-CAS entries
//
// New organizations can be added at runtime via the registry; nothing
// downstream needs to change:
//
//   config::Registry<ownership::AnyTable>::instance().add("mine", factory);
//   auto t = ownership::make_table(config::Config::from_string(
//       "table=mine entries=16384"));
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/config.hpp"
#include "config/registry.hpp"
#include "ownership/ownership.hpp"

namespace tmb::ownership {

/// Built-in organizations (legacy enum; string names are the primary
/// selector — see to_string / make_table(const config::Config&)).
enum class TableKind { kTagless, kTagged, kAtomicTagless };

[[nodiscard]] std::string_view to_string(TableKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] TableKind table_kind_from_string(std::string_view name);

/// Virtual interface mirroring the OwnershipTable concept.
class AnyTable {
public:
    virtual ~AnyTable() = default;

    virtual AcquireResult acquire_read(TxId tx, std::uint64_t block) = 0;
    virtual AcquireResult acquire_write(TxId tx, std::uint64_t block) = 0;
    virtual void release(TxId tx, std::uint64_t block, Mode mode) = 0;
    [[nodiscard]] virtual std::uint64_t entry_count() const noexcept = 0;
    [[nodiscard]] virtual TableCounters counters() const noexcept = 0;
    /// First-level slot `block` hashes to (experiments reason about aliasing
    /// without duplicating the hash).
    [[nodiscard]] virtual std::uint64_t index_of(
        std::uint64_t block) const noexcept = 0;
    /// Currently held entries/records; lets simulators sample occupancy
    /// through the erased interface (paper §4's occupancy measurements).
    [[nodiscard]] virtual std::uint64_t occupied_entries() const noexcept = 0;
    /// Permission state a non-transactional access to `block` would observe
    /// (strong-isolation probes, paper §6). For tagless organizations this
    /// is the shared entry's mode — aliases make innocent accesses look
    /// conflicting; for tagged it is the block's own record.
    [[nodiscard]] virtual Mode mode_of_block(
        std::uint64_t block) const noexcept = 0;
    /// Largest number of concurrently live transactions this organization
    /// supports (valid TxIds are [0, max_tx)). 64 for the lock-based tables;
    /// 62 for atomic_tagless, whose entry word spends two bits on the mode.
    /// Drivers must validate their concurrency against this, not kMaxTx.
    [[nodiscard]] virtual TxId max_tx() const noexcept = 0;
    virtual void clear() = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// The process-wide ownership-table registry (see header comment).
using TableRegistry = config::Registry<AnyTable>;

/// Registered organization names, in registration order. Benches iterate
/// this to ablate across every available organization.
[[nodiscard]] std::vector<std::string> table_names();

/// Creates a table from a Config. Keys:
///   table    organization name (default "tagless")
///   entries  first-level slot count N (default 4096; accepts "64k")
///   hash     shift-mask | multiplicative | mix64 (default mix64)
[[nodiscard]] std::unique_ptr<AnyTable> make_table(const config::Config& cfg);

/// Creates a table by registry name with an already-parsed shape — the path
/// for drivers that hold a TableConfig (simulators, the hybrid TM).
[[nodiscard]] std::unique_ptr<AnyTable> make_table(std::string_view name,
                                                   TableConfig config);

/// Creates a table of the requested built-in organization (legacy path;
/// routed through the registry).
[[nodiscard]] std::unique_ptr<AnyTable> make_table(TableKind kind,
                                                   TableConfig config);

/// Parses the table-shape keys (`entries`, `hash`) out of a Config.
[[nodiscard]] TableConfig table_config_from(const config::Config& cfg);

}  // namespace tmb::ownership
