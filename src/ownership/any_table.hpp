// any_table.hpp — type-erased ownership table for tooling.
//
// Simulators, the STM and the benches are templates over the concrete table
// type (the acquire path is hot). Example programs and runtime-configurable
// tools instead use this small virtual wrapper, selected by `TableKind`.
#pragma once

#include <memory>
#include <string_view>

#include "ownership/ownership.hpp"
#include "ownership/tagged_table.hpp"
#include "ownership/tagless_table.hpp"

namespace tmb::ownership {

enum class TableKind { kTagless, kTagged };

[[nodiscard]] std::string_view to_string(TableKind kind) noexcept;

/// Virtual interface mirroring the OwnershipTable concept.
class AnyTable {
public:
    virtual ~AnyTable() = default;

    virtual AcquireResult acquire_read(TxId tx, std::uint64_t block) = 0;
    virtual AcquireResult acquire_write(TxId tx, std::uint64_t block) = 0;
    virtual void release(TxId tx, std::uint64_t block, Mode mode) = 0;
    [[nodiscard]] virtual std::uint64_t entry_count() const noexcept = 0;
    [[nodiscard]] virtual TableCounters counters() const noexcept = 0;
    virtual void clear() = 0;
    [[nodiscard]] virtual TableKind kind() const noexcept = 0;
};

/// Creates a table of the requested organization.
[[nodiscard]] std::unique_ptr<AnyTable> make_table(TableKind kind,
                                                   TableConfig config);

}  // namespace tmb::ownership
