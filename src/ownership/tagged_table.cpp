#include "ownership/tagged_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hpp"

namespace tmb::ownership {

TaggedTable::TaggedTable(TableConfig config) : config_(config) {
    if (config_.entries == 0) throw std::invalid_argument("table must have entries");
    slots_.resize(config_.entries);
}

std::uint64_t TaggedTable::index_of(std::uint64_t block) const noexcept {
    return util::hash_block(config_.hash, block, config_.entries);
}

Mode TaggedTable::mode_of_block(std::uint64_t block) const noexcept {
    const Slot& slot = slots_[index_of(block)];
    for (const Record& r : slot) {
        if (r.block == block) return r.mode;
    }
    return Mode::kFree;
}

unsigned TaggedTable::tag_bits(unsigned address_bits,
                               unsigned block_offset_bits) const noexcept {
    const unsigned index_bits =
        util::is_pow2(config_.entries) ? util::log2_pow2(config_.entries) : 0;
    const unsigned consumed = block_offset_bits + index_bits;
    return consumed >= address_bits ? 0 : address_bits - consumed;
}

TaggedTable::Record* TaggedTable::find(Slot& slot, std::uint64_t block) {
    for (std::size_t i = 0; i < slot.size(); ++i) {
        ++probe_steps_;
        if (slot[i].block == block) {
            if (i > 0) ++alias_traversals_;
            return &slot[i];
        }
    }
    if (!slot.empty()) ++alias_traversals_;
    return nullptr;
}

TaggedTable::Record& TaggedTable::find_or_create(Slot& slot, std::uint64_t block) {
    if (Record* r = find(slot, block)) return *r;
    slot.push_back(Record{.block = block});
    ++live_records_;
    return slot.back();
}

AcquireResult TaggedTable::acquire_read(TxId tx, std::uint64_t block) {
    ++counters_.read_acquires;
    Slot& slot = slots_[index_of(block)];
    Record& r = find_or_create(slot, block);
    switch (r.mode) {
        case Mode::kFree:
            r.mode = Mode::kRead;
            r.sharers = tx_bit(tx);
            return {.ok = true};
        case Mode::kRead:
            r.sharers |= tx_bit(tx);
            return {.ok = true};
        case Mode::kWrite:
            if (r.writer == tx) return {.ok = true};
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(r.writer)};
    }
    return {.ok = false};
}

AcquireResult TaggedTable::acquire_write(TxId tx, std::uint64_t block) {
    ++counters_.write_acquires;
    Slot& slot = slots_[index_of(block)];
    Record& r = find_or_create(slot, block);
    switch (r.mode) {
        case Mode::kFree:
            r.mode = Mode::kWrite;
            r.writer = tx;
            r.sharers = 0;
            return {.ok = true};
        case Mode::kRead: {
            const std::uint64_t others = r.sharers & ~tx_bit(tx);
            if (others == 0) {
                r.mode = Mode::kWrite;
                r.writer = tx;
                r.sharers = 0;
                return {.ok = true};
            }
            ++counters_.conflicts;
            return {.ok = false, .conflicting = others};
        }
        case Mode::kWrite:
            if (r.writer == tx) return {.ok = true};
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(r.writer)};
    }
    return {.ok = false};
}

void TaggedTable::release(TxId tx, std::uint64_t block, Mode /*mode*/) {
    ++counters_.releases;
    Slot& slot = slots_[index_of(block)];
    for (std::size_t i = 0; i < slot.size(); ++i) {
        Record& r = slot[i];
        if (r.block != block) continue;
        bool now_free = false;
        if (r.mode == Mode::kRead) {
            r.sharers &= ~tx_bit(tx);
            if (r.sharers == 0) now_free = true;
        } else if (r.mode == Mode::kWrite && r.writer == tx) {
            now_free = true;
        }
        if (now_free) {
            slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
            --live_records_;
        }
        return;
    }
}

std::uint64_t TaggedTable::chained_slots() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.size() >= 2 ? 1u : 0u;
    return n;
}

util::Histogram TaggedTable::chain_length_histogram() const {
    util::Histogram h(32);
    for (const auto& s : slots_) h.add(s.size());
    return h;
}

void TaggedTable::clear() {
    for (auto& s : slots_) s.clear();
    live_records_ = 0;
}

}  // namespace tmb::ownership
