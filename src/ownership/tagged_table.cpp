#include "ownership/tagged_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hpp"

namespace tmb::ownership {

TaggedTable::TaggedTable(TableConfig config)
    : config_(config), hasher_(config.hash, config.entries) {
    if (config_.entries == 0) throw std::invalid_argument("table must have entries");
    slots_.resize(config_.entries);
}

std::uint64_t TaggedTable::index_of(std::uint64_t block) const noexcept {
    return hasher_(block);
}

Mode TaggedTable::mode_of_block(std::uint64_t block) const noexcept {
    const Slot& slot = slots_[index_of(block)];
    if (slot.first.mode != Mode::kFree && slot.first.block == block) {
        return slot.first.mode;
    }
    if (slot.overflow) {
        for (const Record& r : *slot.overflow) {
            if (r.block == block) return r.mode;
        }
    }
    return Mode::kFree;
}

unsigned TaggedTable::tag_bits(unsigned address_bits,
                               unsigned block_offset_bits) const noexcept {
    const unsigned index_bits =
        util::is_pow2(config_.entries) ? util::log2_pow2(config_.entries) : 0;
    const unsigned consumed = block_offset_bits + index_bits;
    return consumed >= address_bits ? 0 : address_bits - consumed;
}

TaggedTable::Record* TaggedTable::find(Slot& slot, std::uint64_t block) {
    if (slot.first.mode == Mode::kFree) return nullptr;  // empty slot
    ++probe_steps_;
    if (slot.first.block == block) return &slot.first;
    if (slot.overflow) {
        for (Record& r : *slot.overflow) {
            ++probe_steps_;
            if (r.block == block) {
                ++alias_traversals_;
                return &r;
            }
        }
    }
    ++alias_traversals_;  // non-empty slot, no matching record
    return nullptr;
}

TaggedTable::Record& TaggedTable::find_or_create(Slot& slot, std::uint64_t block) {
    if (Record* r = find(slot, block)) return *r;
    ++live_records_;
    if (slot.first.mode == Mode::kFree) {
        slot.first = Record{.block = block};
        return slot.first;
    }
    if (!slot.overflow) slot.overflow = std::make_unique<std::vector<Record>>();
    slot.overflow->push_back(Record{.block = block});
    return slot.overflow->back();
}

/// Unlinks a freed record. Chained records swap-remove (order within a
/// chain is not observable); a freed inline record promotes the chain tail
/// so the "overflow implies inline live" invariant holds. Buffers persist.
void TaggedTable::remove(Slot& slot, Record& record) {
    --live_records_;
    if (&record == &slot.first) {
        if (slot.overflow && !slot.overflow->empty()) {
            slot.first = slot.overflow->back();
            slot.overflow->pop_back();
        } else {
            slot.first = Record{};
        }
        return;
    }
    record = slot.overflow->back();
    slot.overflow->pop_back();
}

AcquireResult TaggedTable::acquire_read(TxId tx, std::uint64_t block) {
    ++counters_.read_acquires;
    Slot& slot = slots_[index_of(block)];
    Record& r = find_or_create(slot, block);
    switch (r.mode) {
        case Mode::kFree:
            r.mode = Mode::kRead;
            r.sharers = tx_bit(tx);
            return {.ok = true};
        case Mode::kRead:
            r.sharers |= tx_bit(tx);
            return {.ok = true};
        case Mode::kWrite:
            if (r.writer == tx) return {.ok = true};
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(r.writer)};
    }
    return {.ok = false};
}

AcquireResult TaggedTable::acquire_write(TxId tx, std::uint64_t block) {
    ++counters_.write_acquires;
    Slot& slot = slots_[index_of(block)];
    Record& r = find_or_create(slot, block);
    switch (r.mode) {
        case Mode::kFree:
            r.mode = Mode::kWrite;
            r.writer = tx;
            r.sharers = 0;
            return {.ok = true};
        case Mode::kRead: {
            const std::uint64_t others = r.sharers & ~tx_bit(tx);
            if (others == 0) {
                r.mode = Mode::kWrite;
                r.writer = tx;
                r.sharers = 0;
                return {.ok = true};
            }
            ++counters_.conflicts;
            return {.ok = false, .conflicting = others};
        }
        case Mode::kWrite:
            if (r.writer == tx) return {.ok = true};
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(r.writer)};
    }
    return {.ok = false};
}

void TaggedTable::release(TxId tx, std::uint64_t block, Mode /*mode*/) {
    ++counters_.releases;
    Slot& slot = slots_[index_of(block)];
    Record* r = nullptr;
    if (slot.first.mode != Mode::kFree && slot.first.block == block) {
        r = &slot.first;
    } else if (slot.overflow) {
        for (Record& cand : *slot.overflow) {
            if (cand.block == block) {
                r = &cand;
                break;
            }
        }
    }
    if (r == nullptr) return;  // tolerated: release of an unknown block
    bool now_free = false;
    if (r->mode == Mode::kRead) {
        r->sharers &= ~tx_bit(tx);
        if (r->sharers == 0) now_free = true;
    } else if (r->mode == Mode::kWrite && r->writer == tx) {
        now_free = true;
    }
    if (now_free) remove(slot, *r);
}

std::uint64_t TaggedTable::chained_slots() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.live() >= 2 ? 1u : 0u;
    return n;
}

util::Histogram TaggedTable::chain_length_histogram() const {
    util::Histogram h(32);
    for (const auto& s : slots_) h.add(s.live());
    return h;
}

void TaggedTable::clear() {
    for (auto& s : slots_) {
        s.first = Record{};
        if (s.overflow) s.overflow->clear();  // buffer retained
    }
    live_records_ = 0;
}

}  // namespace tmb::ownership
