#include "ownership/tagless_table.hpp"

#include <bit>
#include <stdexcept>

namespace tmb::ownership {

TaglessTable::TaglessTable(TableConfig config)
    : config_(config), hasher_(config.hash, config.entries) {
    if (config_.entries == 0) throw std::invalid_argument("table must have entries");
    entries_.resize(config_.entries);
}

std::uint64_t TaglessTable::index_of(std::uint64_t block) const noexcept {
    return hasher_(block);
}

AcquireResult TaglessTable::acquire_read(TxId tx, std::uint64_t block) {
    ++counters_.read_acquires;
    Entry& e = entries_[index_of(block)];
    switch (e.mode) {
        case Mode::kFree:
            e.mode = Mode::kRead;
            e.sharers = tx_bit(tx);
            ++occupied_;
            return {.ok = true};
        case Mode::kRead:
            e.sharers |= tx_bit(tx);
            return {.ok = true};
        case Mode::kWrite:
            if (e.writer == tx) return {.ok = true};  // own write covers reads
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(e.writer)};
    }
    return {.ok = false};
}

AcquireResult TaglessTable::acquire_write(TxId tx, std::uint64_t block) {
    ++counters_.write_acquires;
    Entry& e = entries_[index_of(block)];
    switch (e.mode) {
        case Mode::kFree:
            e.mode = Mode::kWrite;
            e.writer = tx;
            e.sharers = 0;
            ++occupied_;
            return {.ok = true};
        case Mode::kRead: {
            const std::uint64_t others = e.sharers & ~tx_bit(tx);
            if (others == 0) {
                // Sole reader (us, or entry left with stale zero sharers):
                // upgrade in place.
                e.mode = Mode::kWrite;
                e.writer = tx;
                e.sharers = 0;
                return {.ok = true};
            }
            ++counters_.conflicts;
            return {.ok = false, .conflicting = others};
        }
        case Mode::kWrite:
            if (e.writer == tx) return {.ok = true};
            ++counters_.conflicts;
            return {.ok = false, .conflicting = tx_bit(e.writer)};
    }
    return {.ok = false};
}

void TaglessTable::release(TxId tx, std::uint64_t block, Mode /*mode*/) {
    ++counters_.releases;
    Entry& e = entries_[index_of(block)];
    switch (e.mode) {
        case Mode::kFree:
            return;  // tolerated: alias of an already-released hold
        case Mode::kRead:
            e.sharers &= ~tx_bit(tx);
            if (e.sharers == 0) {
                e.mode = Mode::kFree;
                --occupied_;
            }
            return;
        case Mode::kWrite:
            if (e.writer == tx) {
                e.mode = Mode::kFree;
                e.writer = 0;
                e.sharers = 0;
                --occupied_;
            }
            return;
    }
}

Mode TaglessTable::mode_at(std::uint64_t index) const noexcept {
    return entries_[index].mode;
}

std::uint64_t TaglessTable::sharers_at(std::uint64_t index) const noexcept {
    const Entry& e = entries_[index];
    return e.mode == Mode::kRead
               ? static_cast<std::uint64_t>(std::popcount(e.sharers))
               : 0;
}

TxId TaglessTable::writer_at(std::uint64_t index) const noexcept {
    const Entry& e = entries_[index];
    return e.mode == Mode::kWrite ? e.writer : 0;
}

void TaglessTable::clear() {
    for (auto& e : entries_) e = Entry{};
    occupied_ = 0;
}

}  // namespace tmb::ownership
