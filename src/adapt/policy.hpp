// policy.hpp — the decision function of the contention-adaptive runtime.
//
// The adaptive backend (adaptive_stm.cpp) samples one *epoch* of execution
// — N committed transactions over the currently mounted engine — and asks
// `decide` whether the next epoch should run on a different engine shape.
// The decision is a pure function of (policy knobs, current shape, initial
// shape, epoch sample): no wall clock, no randomness, so a scheduled run
// in the sched harness replays bit-for-bit and every transition a test
// provokes is provable.
//
// The auto policy's resize rule is the paper's birthday model made
// operational. With C concurrent transactions of footprint W blocks over a
// tagless table of N entries, the expected alias (false-conflict) pairs per
// transaction are ≈ (C-1)·W²/(2N) — the per-transaction share of the
// paper's C(C-1)W²/2N pairwise count (core/birthday.hpp). When the
// *measured* false-conflict rate of an epoch exceeds the policy threshold,
// the model is inverted to find the smallest power-of-two N' that predicts
// a comfortably lower rate; if no N' under the growth cap works (or hot
// spots make the measurement exceed the model by far), the policy switches
// to the tagged organization, which cannot false-conflict at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "stm/stm.hpp"

namespace tmb::adapt {

/// Thresholds and mode of the decision function. Parsed from
/// StmConfig::adapt; the numeric thresholds are engine defaults (not yet
/// config keys) chosen in bench/ext_phase_adaptive.cpp's phase experiments.
struct PolicyConfig {
    enum class Kind { kOff, kAuto, kCycle };
    Kind kind = Kind::kAuto;
    std::uint64_t epoch_commits = 4096;
    std::uint32_t epoch_ms = 0;
    std::uint64_t max_entries = std::uint64_t{1} << 22;

    /// Auto thresholds. An epoch with fewer than min_commits *attempts*
    /// (commits + aborts) is ignored (too noisy to act on).
    std::uint64_t min_commits = 32;
    double abort_hi = 0.75;   ///< lazy → eager: upgrade starvation escape
    double abort_lo = 0.02;   ///< lazy → eager / gv1 → gv5 below this
    double false_hi = 0.02;   ///< false conflicts per commit triggering resize
    double clock_hi = 0.05;   ///< clock CAS failures per commit: gv5 → gv1
};

/// Parses StmConfig::adapt (policy name + epoch/cap knobs) into a
/// PolicyConfig. Throws std::invalid_argument on an unknown policy name.
[[nodiscard]] PolicyConfig policy_config_from(const stm::AdaptConfig& cfg);

/// What one epoch measured, as deltas over the epoch.
struct EpochSample {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    /// Transactional loads+stores issued by the *successful* attempts of
    /// the epoch's commits — footprint in accesses, ≈ 2·W for the
    /// read-modify-write workloads (counted per access, not per unique
    /// block, so the derived W overestimates and resizes err large).
    std::uint64_t accesses = 0;
    std::uint64_t true_conflicts = 0;
    std::uint64_t false_conflicts = 0;
    std::uint64_t clock_cas_failures = 0;
    /// Live contexts when the epoch closed — the model's C.
    std::uint32_t concurrency = 1;

    [[nodiscard]] double abort_rate() const noexcept {
        const double attempts =
            static_cast<double>(commits) + static_cast<double>(aborts);
        return attempts > 0.0 ? static_cast<double>(aborts) / attempts : 0.0;
    }
    [[nodiscard]] double per_commit(std::uint64_t counter) const noexcept {
        return commits ? static_cast<double>(counter) /
                             static_cast<double>(commits)
                       : 0.0;
    }
    /// Mean footprint of a committed transaction in blocks (accesses/2,
    /// floor 1): the model's W.
    [[nodiscard]] double footprint_blocks() const noexcept {
        const double w = per_commit(accesses) / 2.0;
        return w < 1.0 ? 1.0 : w;
    }
};

/// Birthday-model prediction: expected false conflicts per committed
/// transaction for concurrency C, footprint W blocks, table size N —
/// (C-1)·W²/(2N).
[[nodiscard]] double predicted_false_per_commit(std::uint32_t concurrency,
                                                double footprint_blocks,
                                                std::uint64_t entries);

/// Smallest power-of-two entry count in [at_least, max_entries] whose
/// predicted false-conflict rate is below `target`; 0 when none qualifies.
[[nodiscard]] std::uint64_t entries_for_target(std::uint32_t concurrency,
                                               double footprint_blocks,
                                               double target,
                                               std::uint64_t at_least,
                                               std::uint64_t max_entries);

/// The decision: nullopt to keep the current shape, otherwise the full
/// StmConfig the next epoch's engine is built from. `current` is the live
/// engine's config, `initial` the shape the Stm was constructed with (the
/// cycle policy's home position). Never crosses engine families.
[[nodiscard]] std::optional<stm::StmConfig> decide(
    const PolicyConfig& policy, const stm::StmConfig& current,
    const stm::StmConfig& initial, const EpochSample& sample);

/// One-line human-readable engine shape, e.g.
/// "table=tagless entries=16384 locks=eager" or "tl2 clock=gv5".
[[nodiscard]] std::string engine_spec(const stm::StmConfig& cfg);

}  // namespace tmb::adapt
