// adaptive_stm.hpp — public face of the contention-adaptive runtime.
//
// The machinery lives behind `backend=adaptive` in the ordinary backend
// registry, so most callers never include this header:
//
//   auto tm = stm::Stm::create(config::Config::from_string(
//       "backend=adaptive engine=table table=tagless entries=1024 "
//       "policy=auto epoch=512"));
//
// AdaptiveStm is a thin convenience wrapper for code that wants the
// adaptive runtime by type rather than by string: it pins backend=adaptive,
// forwards transactions, and exposes the live engine description.
//
// Epoch protocol (implemented in adaptive_stm.cpp):
//
//   1. Every committed transaction advances the current epoch's counters.
//      At an epoch boundary (N commits, or M ms when epoch_ms is set) the
//      policy (adapt/policy.hpp) examines the epoch sample; a switch
//      decision is *staged* — published as a pending config, never applied
//      in the commit path.
//   2. A beginning transaction that sees a pending switch stands back
//      (yielding) instead of entering the engine; when the last in-flight
//      transaction drains, one beginner performs the swap: asserts the old
//      engine's metadata is fully released (occupied_metadata_entries()==0
//      — quiescence is a hard invariant, not a hope), builds the new engine
//      from the staged config, and republishes.
//   3. Contexts lazily rebind: each holds a shared_ptr to the epoch it was
//      created under, so the old engine outlives its last context even
//      after the swap, and no transaction ever spans two engines.
//
// Every swap passes a kPolicySwitch scheduler yield point, so the sched
// harness explores transitions like any other interleaving and the
// serializability oracle checks runs that switch engines mid-schedule.
#pragma once

#include <memory>
#include <string>

#include "config/config.hpp"
#include "stm/stm.hpp"

namespace tmb::adapt {

/// The contention-adaptive STM: an stm::Stm pinned to backend=adaptive.
class AdaptiveStm {
public:
    /// Builds from the usual key set (stm_config_from) with backend forced
    /// to adaptive; `engine=`, `policy=`, `epoch=`, `epoch_ms=`,
    /// `max_entries=` select the wrapped engine and policy.
    explicit AdaptiveStm(const config::Config& cfg);

    /// Runs `fn` transactionally on the currently mounted engine.
    template <typename F>
    decltype(auto) atomically(F&& fn) {
        return stm_->atomically(std::forward<F>(fn));
    }

    /// The underlying runtime (for make_executor etc.).
    [[nodiscard]] stm::Stm& stm() noexcept { return *stm_; }

    /// Live engine shape, e.g. "adaptive(table=tagged entries=16384
    /// locks=eager epoch=3)" — changes when the policy switches.
    [[nodiscard]] std::string describe() const {
        return stm_->backend_description();
    }

    [[nodiscard]] stm::StmStats stats() const noexcept {
        return stm_->stats();
    }

private:
    std::unique_ptr<stm::Stm> stm_;
};

}  // namespace tmb::adapt
