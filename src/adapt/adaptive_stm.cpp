// adaptive_stm.cpp — the epoch-based quiesce-and-swap backend.
//
// Correctness hinges on three protocol rules (see also adaptive_stm.hpp):
//
//   * Swaps run only in the *begin* path. The commit path merely counts and
//     stages; sched_hook.hpp's guarantee that a commit executes as one
//     scheduler step — the basis of the commit-order serializability oracle
//     — is untouched.
//   * A beginner and the swapper race on (in_flight, pending) with seq_cst
//     on both sides (the classic Dekker pattern): either the beginner
//     observes the pending flag and stands back, or the swapper observes
//     the beginner's in_flight increment and retries. Hence in_flight == 0
//     at the swap means *no* transaction is between begin and
//     commit/abort on the old engine.
//   * A waiting beginner yields YieldPoint::kRetry, which the sched
//     harness maps to Event::kAbort — so PCT schedules demote it and the
//     in-flight holder it is waiting for eventually runs (no priority
//     livelock).
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "adapt/adaptive_stm.hpp"
#include "adapt/policy.hpp"
#include "stm/backend.hpp"
#include "stm/sched_hook.hpp"

namespace tmb::stm::detail {

namespace {

using Clock = std::chrono::steady_clock;

/// Builds the concrete engine for an epoch. Direct factory dispatch (not
/// the registry) keeps construction allocation-minimal and cannot recurse
/// into the adaptive entry.
[[nodiscard]] std::unique_ptr<Backend> build_engine(const StmConfig& cfg,
                                                    SharedStats& stats,
                                                    ReclaimDomain& reclaim) {
    switch (cfg.backend) {
        case BackendKind::kTl2: return make_tl2_backend(cfg, stats, reclaim);
        case BackendKind::kTaglessAtomic:
            return make_atomic_backend(cfg, stats, reclaim);
        case BackendKind::kTaglessTable:
        case BackendKind::kTaggedTable:
            return make_table_backend(cfg, stats, reclaim);
        case BackendKind::kAdaptive: break;
    }
    throw std::logic_error("adaptive: inner engine must be concrete");
}

/// One generation of the wrapped engine plus its epoch counters. Contexts
/// keep their generation alive via shared_ptr, so transactions that bound
/// before a swap finish (and their contexts release engine slots) against
/// the engine they started on.
struct EngineEpoch {
    std::uint64_t seq = 0;
    StmConfig cfg;  ///< concrete (backend != kAdaptive)
    std::unique_ptr<Backend> engine;
    /// Epoch-local tallies (relaxed: folded into one sample at the boundary).
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint64_t> accesses{0};
    /// Shared-counter baselines at epoch start, for delta sampling.
    std::uint64_t base_true = 0;
    std::uint64_t base_false = 0;
    std::uint64_t base_clock_cas = 0;
    Clock::time_point started = Clock::now();
};

class AdaptiveBackend;

/// Context wrapper: the inner context plus the epoch it is bound to.
/// Member order matters — inner_ must be destroyed (releasing its engine
/// slot) before epoch_ drops the engine itself.
class AdaptCx final : public TxContext {
public:
    explicit AdaptCx(AdaptiveBackend& owner) : owner_(owner) {}
    ~AdaptCx() override;

    void flush_stats() noexcept override {
        if (inner_) inner_->flush_stats();
    }

    AdaptiveBackend& owner_;
    std::shared_ptr<EngineEpoch> epoch_;
    std::unique_ptr<TxContext> inner_;
    std::uint64_t epoch_seq_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t attempt_accesses_ = 0;
};

class AdaptiveBackend final : public Backend {
public:
    AdaptiveBackend(const StmConfig& config, SharedStats& stats,
                    ReclaimDomain& reclaim)
        : outer_(config),
          policy_(adapt::policy_config_from(config.adapt)),
          stats_(stats),
          reclaim_(reclaim) {
        initial_ = config;
        initial_.backend = config.adapt.engine;
        auto first = std::make_shared<EngineEpoch>();
        first->cfg = initial_;
        first->engine = build_engine(initial_, stats_, reclaim_);
        capacity_ = first->engine->max_live_contexts();
        epoch_ = std::move(first);
        published_seq_.store(0, std::memory_order_release);
    }

    std::unique_ptr<TxContext> make_context() override {
        live_contexts_.fetch_add(1, std::memory_order_relaxed);
        // Unbound: the inner context (and for table engines its TxId slot)
        // is acquired at first begin, against whatever epoch is then live.
        return std::make_unique<AdaptCx>(*this);
    }

    void begin(TxContext& cx_base) override {
        auto& cx = static_cast<AdaptCx&>(cx_base);
        for (;;) {
            in_flight_.fetch_add(1, std::memory_order_seq_cst);
            if (!pending_.load(std::memory_order_seq_cst) && cx.inner_ &&
                cx.epoch_seq_ == published_seq_.load(std::memory_order_seq_cst)) {
                break;
            }
            // Either a switch is staged or this context is bound to a
            // retired epoch: stand back (no in_flight held across waiting,
            // or the drain could never complete) and rebind.
            in_flight_.fetch_sub(1, std::memory_order_seq_cst);
            wait_and_bind(cx);
        }
        cx.attempt_accesses_ = 0;
        cx.epoch_->engine->begin(*cx.inner_);
    }

    std::uint64_t load(TxContext& cx_base, const std::uint64_t* addr) override {
        auto& cx = static_cast<AdaptCx&>(cx_base);
        ++cx.attempt_accesses_;
        return cx.epoch_->engine->load(*cx.inner_, addr);
    }

    void store(TxContext& cx_base, std::uint64_t* addr,
               std::uint64_t value) override {
        auto& cx = static_cast<AdaptCx&>(cx_base);
        ++cx.attempt_accesses_;
        cx.epoch_->engine->store(*cx.inner_, addr, value);
    }

    bool commit(TxContext& cx_base) override {
        auto& cx = static_cast<AdaptCx&>(cx_base);
        EngineEpoch& ep = *cx.epoch_;
        const bool ok = ep.engine->commit(*cx.inner_);
        std::uint64_t epoch_commits = 0;
        std::uint64_t epoch_aborts = 0;
        if (ok) {
            epoch_commits = ep.commits.fetch_add(1, std::memory_order_relaxed) + 1;
            ep.accesses.fetch_add(cx.attempt_accesses_,
                                  std::memory_order_relaxed);
        } else {
            epoch_aborts = ep.aborts.fetch_add(1, std::memory_order_relaxed) + 1;
        }
        in_flight_.fetch_sub(1, std::memory_order_seq_cst);
        // Boundary check after the in-flight release: staging only sets a
        // flag, so this path never blocks and never yields.
        if ((ok && at_epoch_boundary(ep, epoch_commits)) ||
            (!ok && at_abort_boundary(epoch_aborts))) {
            maybe_stage_switch(ep);
        }
        return ok;
    }

    void abort(TxContext& cx_base) override {
        auto& cx = static_cast<AdaptCx&>(cx_base);
        EngineEpoch& ep = *cx.epoch_;
        ep.engine->abort(*cx.inner_);
        const std::uint64_t epoch_aborts =
            ep.aborts.fetch_add(1, std::memory_order_relaxed) + 1;
        in_flight_.fetch_sub(1, std::memory_order_seq_cst);
        if (at_abort_boundary(epoch_aborts)) maybe_stage_switch(ep);
    }

    std::uint32_t max_live_contexts() const noexcept override {
        // The policy never leaves the initial engine's family, so the
        // capacity quoted at construction holds across every swap.
        return capacity_;
    }

    std::uint64_t occupied_metadata_entries() const noexcept override {
        const std::lock_guard<std::mutex> lock(mutex_);
        return epoch_->engine->occupied_metadata_entries();
    }

    std::string describe() const override {
        std::shared_ptr<EngineEpoch> ep;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ep = epoch_;
        }
        return "adaptive(" + adapt::engine_spec(ep->cfg) +
               " epoch=" + std::to_string(ep->seq) + ")";
    }

    void context_retired() noexcept {
        live_contexts_.fetch_sub(1, std::memory_order_relaxed);
    }

private:
    [[nodiscard]] bool at_epoch_boundary(const EngineEpoch& ep,
                                         std::uint64_t epoch_commits) const {
        if (policy_.kind == adapt::PolicyConfig::Kind::kOff) return false;
        if (epoch_commits % policy_.epoch_commits == 0) return true;
        // Wall-clock bound, checked sparsely to keep now() off the hot
        // path. Off by default (epoch_ms=0): a time trigger would make
        // scheduled runs irreproducible.
        if (policy_.epoch_ms != 0 && epoch_commits % 64 == 0) {
            return Clock::now() - ep.started >=
                   std::chrono::milliseconds(policy_.epoch_ms);
        }
        return false;
    }

    /// Abort-side epoch boundary. Epochs normally advance on commits, but a
    /// configuration that starves (e.g. lazy acquisition livelocking
    /// read-modify-write upgrades) commits *nothing* — a commit-only
    /// boundary would pin it forever. Aborts therefore also close an epoch,
    /// at a multiple of the commit period so the abort path stays cheap and
    /// healthy epochs still close on commits.
    [[nodiscard]] bool at_abort_boundary(std::uint64_t epoch_aborts) const {
        if (policy_.kind == adapt::PolicyConfig::Kind::kOff) return false;
        if (epoch_aborts == 0) return false;
        return epoch_aborts % (policy_.epoch_commits * 4) == 0;
    }

    /// Closes the epoch sample and stages a switch when the policy asks
    /// for one. Runs under the mutex; commit-path callers only ever stage —
    /// the swap itself happens in wait_and_bind.
    void maybe_stage_switch(EngineEpoch& ep) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (epoch_.get() != &ep) return;  // raced with a completed swap
        if (pending_.load(std::memory_order_seq_cst)) return;
        adapt::EpochSample sample;
        sample.commits = ep.commits.load(std::memory_order_relaxed);
        sample.aborts = ep.aborts.load(std::memory_order_relaxed);
        sample.accesses = ep.accesses.load(std::memory_order_relaxed);
        sample.true_conflicts =
            stats_.true_conflicts.load(std::memory_order_relaxed) -
            ep.base_true;
        sample.false_conflicts =
            stats_.false_conflicts.load(std::memory_order_relaxed) -
            ep.base_false;
        sample.clock_cas_failures =
            stats_.clock_cas_failures.load(std::memory_order_relaxed) -
            ep.base_clock_cas;
        const std::uint32_t live =
            static_cast<std::uint32_t>(live_contexts_.load(
                std::memory_order_relaxed));
        sample.concurrency = live ? live : 1;
        auto next = adapt::decide(policy_, ep.cfg, initial_, sample);
        if (!next) {
            // No change: reset the epoch counters in place so the next
            // sample covers fresh commits only.
            ep.commits.store(0, std::memory_order_relaxed);
            ep.aborts.store(0, std::memory_order_relaxed);
            ep.accesses.store(0, std::memory_order_relaxed);
            ep.base_true += sample.true_conflicts;
            ep.base_false += sample.false_conflicts;
            ep.base_clock_cas += sample.clock_cas_failures;
            ep.started = Clock::now();
            return;
        }
        pending_cfg_ = *next;
        pending_.store(true, std::memory_order_seq_cst);
    }

    /// Slow begin path: drain/perform a staged swap, then bind the context
    /// to the live epoch. Called with no in_flight ticket held; may yield
    /// (and the harness may cancel the run by throwing through the yield).
    void wait_and_bind(AdaptCx& cx) {
        while (pending_.load(std::memory_order_seq_cst)) {
            if (try_swap()) break;
            // Someone is still in flight (or another thread owns the swap
            // lock): let them run. kRetry so PCT demotes this waiter.
            scheduler_yield(YieldPoint::kRetry, YieldSite::kAdaptDrain);
            std::this_thread::yield();
        }
        std::shared_ptr<EngineEpoch> ep;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ep = epoch_;
        }
        if (cx.epoch_ != ep) {
            // Release the old engine's slot *before* acquiring on the new
            // engine — and outside the mutex: inner make_context can block
            // on slot exhaustion, and a parked beginner must not hold the
            // lock the releasing side needs.
            cx.inner_.reset();
            cx.epoch_ = ep;
            cx.inner_ = ep->engine->make_context();
            cx.epoch_seq_ = ep->seq;
        }
    }

    /// Attempts the staged swap. True when the pending flag is clear on
    /// return (this thread swapped, or another already had); false when the
    /// caller should back off and retry (drain incomplete / lock busy).
    bool try_swap() {
        std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
        if (!lock.owns_lock()) return false;
        if (!pending_.load(std::memory_order_seq_cst)) return true;
        if (in_flight_.load(std::memory_order_seq_cst) != 0) return false;
        // Drained. The swap is a scheduling event like any other: announce
        // it so the sched harness can interleave other virtual threads
        // here (they will stand back on the pending flag). Yield outside
        // the lock — a granted thread may need it to park/bind.
        // Which transition the staged config represents: table regrow vs
        // engine/tag/locks/clock flip. Read under the lock (pending_cfg_ is
        // mutex-guarded), announced as its own decision site below so the
        // fuzzer's coverage distinguishes interleavings around the two.
        const bool resize =
            pending_cfg_.table.entries != epoch_->cfg.table.entries;
        lock.unlock();
        scheduler_yield(YieldPoint::kPolicySwitch, YieldSite::kAdaptSwap);
        scheduler_yield(YieldPoint::kPolicySwitch,
                        resize ? YieldSite::kAdaptResize
                               : YieldSite::kAdaptEngineSwitch);
        lock.lock();
        if (!pending_.load(std::memory_order_seq_cst)) return true;
        if (in_flight_.load(std::memory_order_seq_cst) != 0) return false;
        perform_swap_locked();
        return true;
    }

    void perform_swap_locked() {
        EngineEpoch& old = *epoch_;
        // Quiescence is the protocol's hard invariant: zero transactions in
        // flight must mean zero metadata held. A violation here is a lost
        // release — fail loudly, exactly like the harness's end-of-run check.
        if (const std::uint64_t held = old.engine->occupied_metadata_entries()) {
            throw std::logic_error(
                "adaptive: engine swap with " + std::to_string(held) +
                " metadata entries still held (lost release?)");
        }
        // Quiescence also means no epoch pin is held (pins live strictly
        // between begin and commit/abort), so every retired block can be
        // released before the old engine goes away — a zombie reader that
        // observed a since-freed pointer through the old engine's metadata
        // no longer exists.
        reclaim_.drain_all();
        auto next = std::make_shared<EngineEpoch>();
        next->seq = old.seq + 1;
        next->cfg = pending_cfg_;
        next->engine = build_engine(pending_cfg_, stats_, reclaim_);
        next->base_true = stats_.true_conflicts.load(std::memory_order_relaxed);
        next->base_false =
            stats_.false_conflicts.load(std::memory_order_relaxed);
        next->base_clock_cas =
            stats_.clock_cas_failures.load(std::memory_order_relaxed);
        stats_.policy_switches.fetch_add(1, std::memory_order_relaxed);
        if (next->cfg.table.entries != old.cfg.table.entries) {
            stats_.table_resizes.fetch_add(1, std::memory_order_relaxed);
        }
        epoch_ = std::move(next);  // old epoch lives on via bound contexts
        published_seq_.store(epoch_->seq, std::memory_order_seq_cst);
        pending_.store(false, std::memory_order_seq_cst);
    }

    StmConfig outer_;
    StmConfig initial_;  ///< concrete home shape (outer_ with adapt.engine)
    adapt::PolicyConfig policy_;
    SharedStats& stats_;
    ReclaimDomain& reclaim_;
    std::uint32_t capacity_ = 0;

    mutable std::mutex mutex_;
    std::shared_ptr<EngineEpoch> epoch_;     ///< guarded by mutex_
    StmConfig pending_cfg_;                  ///< guarded by mutex_
    std::atomic<std::uint64_t> published_seq_{0};
    std::atomic<bool> pending_{false};
    std::atomic<std::uint64_t> in_flight_{0};
    std::atomic<std::uint64_t> live_contexts_{0};
};

AdaptCx::~AdaptCx() {
    owner_.context_retired();
}

}  // namespace

std::unique_ptr<Backend> make_adaptive_backend(const StmConfig& config,
                                               SharedStats& stats,
                                               ReclaimDomain& reclaim) {
    return std::make_unique<AdaptiveBackend>(config, stats, reclaim);
}

}  // namespace tmb::stm::detail

namespace tmb::adapt {

AdaptiveStm::AdaptiveStm(const config::Config& cfg) {
    stm::StmConfig parsed = stm::stm_config_from(cfg);
    if (parsed.backend != stm::BackendKind::kAdaptive) {
        // By-type construction implies the adaptive layer; a concrete
        // backend= names the *wrapped* engine instead.
        parsed.adapt.engine = parsed.backend;
        parsed.backend = stm::BackendKind::kAdaptive;
    }
    stm_ = std::make_unique<stm::Stm>(parsed);
}

}  // namespace tmb::adapt
