#include "adapt/policy.hpp"

#include <bit>
#include <stdexcept>

namespace tmb::adapt {

namespace {

using stm::BackendKind;
using stm::StmConfig;

[[nodiscard]] bool is_table_family(BackendKind kind) noexcept {
    return kind == BackendKind::kTaglessTable ||
           kind == BackendKind::kTaggedTable;
}

/// The deterministic test/fuzz rotation: every transition the adaptive
/// protocol supports, one per epoch, returning home on the fourth. Stages
/// are recognized from the config itself (no hidden state), so replaying a
/// schedule replays the same rotation.
[[nodiscard]] StmConfig cycle_next(const StmConfig& current,
                                   const StmConfig& initial,
                                   const PolicyConfig& policy) {
    StmConfig next = current;
    if (current.backend == BackendKind::kTl2) {
        next.tl2_clock = current.tl2_clock == stm::Tl2Clock::kGv5
                             ? stm::Tl2Clock::kGv1
                             : stm::Tl2Clock::kGv5;
        return next;
    }
    if (current.backend == BackendKind::kTaglessAtomic) {
        // The atomic family has no tagged or lazy variant; toggle a resize.
        next.table.entries =
            current.table.entries == initial.table.entries &&
                    initial.table.entries * 2 <= policy.max_entries
                ? initial.table.entries * 2
                : initial.table.entries;
        return next;
    }
    // Table family: initial shape → toggled tag → lazy → grown → initial.
    const bool home_tag = current.backend == initial.backend;
    const bool home_locks =
        current.commit_time_locks == initial.commit_time_locks;
    const bool home_size = current.table.entries == initial.table.entries;
    if (home_tag && home_locks && home_size) {
        next.backend = initial.backend == BackendKind::kTaglessTable
                           ? BackendKind::kTaggedTable
                           : BackendKind::kTaglessTable;
    } else if (!home_tag) {
        next.backend = initial.backend;
        next.commit_time_locks = !initial.commit_time_locks;
    } else if (!home_locks) {
        next.commit_time_locks = initial.commit_time_locks;
        // Growth capped out ⇒ skip the resize stage and go straight home.
        next.table.entries = initial.table.entries * 2 <= policy.max_entries
                                 ? initial.table.entries * 2
                                 : initial.table.entries;
    } else {
        next.table.entries = initial.table.entries;
    }
    return next;
}

[[nodiscard]] std::optional<StmConfig> decide_tl2(const PolicyConfig& policy,
                                                  const StmConfig& current,
                                                  const EpochSample& sample) {
    StmConfig next = current;
    if (current.tl2_clock == stm::Tl2Clock::kGv5 &&
        sample.per_commit(sample.clock_cas_failures) > policy.clock_hi) {
        // The gv5 lag-absorption path is thrashing the clock line harder
        // than plain fetch_add would; fall back to gv1.
        next.tl2_clock = stm::Tl2Clock::kGv1;
        return next;
    }
    if (current.tl2_clock == stm::Tl2Clock::kGv1 &&
        sample.abort_rate() < policy.abort_lo) {
        // Quiet again: gv5 removes the per-commit fetch_add. (The CAS
        // metric itself is silent under gv1 — raise_clock_to never runs —
        // so re-entry keys off the abort rate instead.)
        next.tl2_clock = stm::Tl2Clock::kGv5;
        return next;
    }
    return std::nullopt;
}

[[nodiscard]] std::optional<StmConfig> decide_tables(
    const PolicyConfig& policy, const StmConfig& current,
    const EpochSample& sample) {
    const bool tagless = current.backend != BackendKind::kTaggedTable;
    StmConfig next = current;
    if (tagless && sample.per_commit(sample.false_conflicts) > policy.false_hi) {
        // Aliasing hurts. Grow to where the birthday model predicts a 4x
        // margin under the threshold; if no table under the cap can (or hot
        // spots put the measurement far beyond the uniform model, where
        // growing would not help), the tagged organization ends false
        // conflicts outright.
        const double measured = sample.per_commit(sample.false_conflicts);
        const double modeled = predicted_false_per_commit(
            sample.concurrency, sample.footprint_blocks(),
            current.table.entries);
        const std::uint64_t grown = entries_for_target(
            sample.concurrency, sample.footprint_blocks(), policy.false_hi / 4,
            current.table.entries * 2, policy.max_entries);
        const bool hot_spot = measured > 4.0 * modeled;
        if (grown != 0 && !hot_spot &&
            current.backend != BackendKind::kTaglessAtomic) {
            next.table.entries = grown;
            return next;
        }
        if (current.backend == BackendKind::kTaglessTable) {
            next.backend = BackendKind::kTaggedTable;
            return next;
        }
        if (grown != 0) {  // atomic family: growth is the only lever
            next.table.entries = grown;
            return next;
        }
        return std::nullopt;
    }
    if (!is_table_family(current.backend)) return std::nullopt;
    // Acquisition-mode rule: the auto policy never *initiates* commit-time
    // acquisition. Under the table engines' sole-reader upgrade rule, lazy
    // acquisition livelocks read-modify-write transactions outright — every
    // reader of a block shares its entry, so no writer can ever upgrade —
    // and the phase experiments measured exactly that (commits/step
    // collapsing by ~400x). Lazy stays reachable explicitly and through the
    // cycle policy; auto only ever *leaves* it: back to eager when calm
    // (eager undo-logging is the cheaper steady state) or when the abort
    // rate shows upgrade starvation.
    if (current.commit_time_locks && (sample.abort_rate() < policy.abort_lo ||
                                      sample.abort_rate() > policy.abort_hi)) {
        next.commit_time_locks = false;
        return next;
    }
    return std::nullopt;
}

}  // namespace

PolicyConfig policy_config_from(const stm::AdaptConfig& cfg) {
    PolicyConfig out;
    if (cfg.policy == "off") {
        out.kind = PolicyConfig::Kind::kOff;
    } else if (cfg.policy == "auto") {
        out.kind = PolicyConfig::Kind::kAuto;
    } else if (cfg.policy == "cycle") {
        out.kind = PolicyConfig::Kind::kCycle;
    } else {
        throw std::invalid_argument("unknown adaptive policy '" + cfg.policy +
                                    "' (known: off, auto, cycle)");
    }
    out.epoch_commits = cfg.epoch_commits ? cfg.epoch_commits : 1;
    out.epoch_ms = cfg.epoch_ms;
    out.max_entries = std::bit_floor(cfg.max_entries ? cfg.max_entries
                                                     : std::uint64_t{1} << 22);
    return out;
}

double predicted_false_per_commit(std::uint32_t concurrency,
                                  double footprint_blocks,
                                  std::uint64_t entries) {
    if (concurrency < 2 || entries == 0) return 0.0;
    return static_cast<double>(concurrency - 1) * footprint_blocks *
           footprint_blocks / (2.0 * static_cast<double>(entries));
}

std::uint64_t entries_for_target(std::uint32_t concurrency,
                                 double footprint_blocks, double target,
                                 std::uint64_t at_least,
                                 std::uint64_t max_entries) {
    if (target <= 0.0) return 0;
    std::uint64_t n = std::bit_ceil(at_least < 2 ? std::uint64_t{2} : at_least);
    for (; n != 0 && n <= max_entries; n *= 2) {
        if (predicted_false_per_commit(concurrency, footprint_blocks, n) <
            target) {
            return n;
        }
    }
    return 0;
}

std::optional<stm::StmConfig> decide(const PolicyConfig& policy,
                                     const stm::StmConfig& current,
                                     const stm::StmConfig& initial,
                                     const EpochSample& sample) {
    switch (policy.kind) {
        case PolicyConfig::Kind::kOff: return std::nullopt;
        case PolicyConfig::Kind::kCycle:
            return cycle_next(current, initial, policy);
        case PolicyConfig::Kind::kAuto: break;
    }
    // Gate on *attempts*: a starving configuration (commits ≈ 0, aborts
    // piling up) is exactly the one that must not be ignored for lack of
    // commits — the abort-side epoch boundary exists to escape it.
    if (sample.commits + sample.aborts < policy.min_commits) {
        return std::nullopt;
    }
    if (current.backend == BackendKind::kTl2) {
        return decide_tl2(policy, current, sample);
    }
    return decide_tables(policy, current, sample);
}

std::string engine_spec(const stm::StmConfig& cfg) {
    switch (cfg.backend) {
        case BackendKind::kTl2:
            return std::string("tl2 clock=") +
                   std::string(stm::to_string(cfg.tl2_clock));
        case BackendKind::kTaglessAtomic:
            return "table=atomic_tagless entries=" +
                   std::to_string(cfg.table.entries);
        case BackendKind::kTaglessTable:
        case BackendKind::kTaggedTable:
            return std::string("table=") +
                   (cfg.backend == BackendKind::kTaglessTable ? "tagless"
                                                              : "tagged") +
                   " entries=" + std::to_string(cfg.table.entries) +
                   " locks=" + (cfg.commit_time_locks ? "lazy" : "eager");
        case BackendKind::kAdaptive: break;
    }
    return "adaptive";
}

}  // namespace tmb::adapt
