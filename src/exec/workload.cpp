#include "exec/workload.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "stm/thashmap.hpp"
#include "stm/tqueue.hpp"
#include "trace/source.hpp"
#include "trace/zipf.hpp"
#include "util/hash.hpp"

namespace tmb::exec {

namespace {

/// Upper bound on per-operation accesses (sizes the stack-local operand
/// buffers). Out-of-range values are rejected, never clamped — a silent
/// clamp would mislabel every reported measurement.
constexpr std::uint32_t kMaxTxSize = 64;

void check_tx_size(std::uint32_t tx_size) {
    if (tx_size == 0 || tx_size > kMaxTxSize) {
        throw std::invalid_argument("tx_size must be in [1, " +
                                    std::to_string(kMaxTxSize) + "]");
    }
}

/// Commutative per-slot digest so the hash is independent of which thread
/// wrote last (values are compared only at quiescence).
[[nodiscard]] std::uint64_t slot_digest(std::uint64_t index,
                                        std::uint64_t value) {
    return util::mix64((index + 1) * 0x9e3779b97f4a7c15ULL ^ value);
}

// ---------------------------------------------------------------------------
// counters — uniform increments over a large array (low-contention baseline)
// ---------------------------------------------------------------------------

class CounterArrayWorkload final : public Workload {
public:
    CounterArrayWorkload(std::uint64_t slots, std::uint32_t tx_size)
        : slots_(slots), tx_size_(tx_size) {
        if (slots == 0) throw std::invalid_argument("workload slots must be > 0");
        check_tx_size(tx_size);
    }

    std::string_view name() const noexcept override { return "counters"; }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        // Operands are drawn before the transaction so a retry re-runs the
        // same logical operation (and rng advances once per op, not once
        // per attempt).
        std::uint64_t picks[kMaxTxSize];
        for (std::uint32_t i = 0; i < tx_size_; ++i) {
            picks[i] = rng.below(slots_.size());
        }
        exec.atomically([&](stm::Transaction& tx) {
            for (std::uint32_t i = 0; i < tx_size_; ++i) {
                auto& slot = slots_[picks[i]];
                slot.write(tx, slot.read(tx) + 1);
            }
        });
    }

    void verify(std::uint64_t committed_ops) const override {
        std::uint64_t sum = 0;
        for (const auto& s : slots_) sum += s.unsafe_read();
        const std::uint64_t expected = committed_ops * tx_size_;
        if (sum != expected) {
            throw std::runtime_error(
                "counters invariant violated: slot sum " + std::to_string(sum) +
                " != ops * tx_size " + std::to_string(expected));
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            h += slot_digest(i, slots_[i].unsafe_read());
        }
        return h;
    }

private:
    std::vector<stm::TVar<std::uint64_t>> slots_;
    std::uint32_t tx_size_;
};

// ---------------------------------------------------------------------------
// zipf — skewed accesses; hot blocks pin hot ownership-table entries
// ---------------------------------------------------------------------------

class ZipfWorkload final : public Workload {
public:
    ZipfWorkload(std::uint64_t slots, std::uint32_t tx_size, double skew)
        : slots_(slots), sampler_(slots, skew), tx_size_(tx_size) {
        check_tx_size(tx_size);
    }

    std::string_view name() const noexcept override { return "zipf"; }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        // tx_size-1 reads plus one increment, all Zipf-distributed: the
        // sampler is shared and immutable, so concurrent sampling is safe.
        std::uint64_t picks[kMaxTxSize];
        for (std::uint32_t i = 0; i < tx_size_; ++i) {
            picks[i] = sampler_.sample(rng);
        }
        exec.atomically([&](stm::Transaction& tx) {
            std::uint64_t acc = 0;
            for (std::uint32_t i = 0; i + 1 < tx_size_; ++i) {
                acc += slots_[picks[i]].read(tx);
            }
            (void)acc;
            auto& hot = slots_[picks[tx_size_ - 1]];
            hot.write(tx, hot.read(tx) + 1);
        });
    }

    void verify(std::uint64_t committed_ops) const override {
        std::uint64_t sum = 0;
        for (const auto& s : slots_) sum += s.unsafe_read();
        if (sum != committed_ops) {
            throw std::runtime_error(
                "zipf invariant violated: slot sum " + std::to_string(sum) +
                " != committed ops " + std::to_string(committed_ops));
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            h += slot_digest(i, slots_[i].unsafe_read());
        }
        return h;
    }

private:
    std::vector<stm::TVar<std::uint64_t>> slots_;
    trace::ZipfianSampler sampler_;
    std::uint32_t tx_size_;
};

// ---------------------------------------------------------------------------
// bank — transfers between random accounts; conservation invariant
// ---------------------------------------------------------------------------

class BankWorkload final : public Workload {
public:
    static constexpr std::int64_t kInitialBalance = 1000;

    explicit BankWorkload(std::uint64_t accounts) : accounts_(accounts) {
        if (accounts < 2) throw std::invalid_argument("bank needs >= 2 accounts");
        for (auto& a : accounts_) a.unsafe_write(kInitialBalance);
    }

    std::string_view name() const noexcept override { return "bank"; }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        const std::uint64_t from = rng.below(accounts_.size());
        std::uint64_t to = rng.below(accounts_.size() - 1);
        if (to >= from) ++to;  // uniform over accounts != from
        const auto amount = static_cast<std::int64_t>(rng.uniform(1, 10));
        exec.atomically([&](stm::Transaction& tx) {
            accounts_[from].write(tx, accounts_[from].read(tx) - amount);
            accounts_[to].write(tx, accounts_[to].read(tx) + amount);
        });
    }

    void verify(std::uint64_t /*committed_ops*/) const override {
        std::int64_t total = 0;
        for (const auto& a : accounts_) total += a.unsafe_read();
        const auto expected =
            static_cast<std::int64_t>(accounts_.size()) * kInitialBalance;
        if (total != expected) {
            throw std::runtime_error(
                "bank invariant violated: total balance " +
                std::to_string(total) + " != " + std::to_string(expected));
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        for (std::size_t i = 0; i < accounts_.size(); ++i) {
            h += slot_digest(
                i, static_cast<std::uint64_t>(accounts_[i].unsafe_read()));
        }
        return h;
    }

private:
    std::vector<stm::TVar<std::int64_t>> accounts_;
};

// ---------------------------------------------------------------------------
// replay — stream a trace source through the STM with real threads
// ---------------------------------------------------------------------------

class ReplayWorkload final : public Workload {
public:
    /// Replay transactions can be much larger than the RNG workloads'
    /// stack-buffered ops; cursors buffer on the heap.
    static constexpr std::uint32_t kMaxReplayTxSize = 4096;

    ReplayWorkload(std::shared_ptr<trace::TraceSource> source,
                   std::uint64_t slots, std::uint32_t accesses_per_tx)
        : slots_(slots),
          source_(std::move(source)),
          accesses_per_tx_(accesses_per_tx),
          id_(next_instance_id()) {
        if (slots == 0) throw std::invalid_argument("workload slots must be > 0");
        if (accesses_per_tx_ == 0 || accesses_per_tx_ > kMaxReplayTxSize) {
            throw std::invalid_argument(
                "replay tx_size must be in [1, " +
                std::to_string(kMaxReplayTxSize) + "]");
        }
        if (source_->stream_count() == 0) {
            throw std::invalid_argument("replay source has no streams");
        }
    }

    std::string_view name() const noexcept override { return "replay"; }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        (void)rng;  // operands come from the trace, not the RNG
        Cursor& cur = cursor();
        fill(cur);
        exec.atomically([&](stm::Transaction& tx) {
            for (const Op& o : cur.ops) {
                auto& slot = slots_[o.slot];
                if (o.is_write) {
                    slot.write(tx, slot.read(tx) + 1);
                } else {
                    (void)slot.read(tx);
                }
            }
        });
        // Published only after the commit, so aborted attempts never count.
        writes_replayed_.fetch_add(cur.writes, std::memory_order_relaxed);
    }

    void verify(std::uint64_t /*committed_ops*/) const override {
        std::uint64_t sum = 0;
        for (const auto& s : slots_) sum += s.unsafe_read();
        const std::uint64_t expected =
            writes_replayed_.load(std::memory_order_relaxed);
        if (sum != expected) {
            throw std::runtime_error(
                "replay invariant violated: slot sum " + std::to_string(sum) +
                " != replayed writes " + std::to_string(expected));
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            h += slot_digest(i, slots_[i].unsafe_read());
        }
        return h;
    }

private:
    /// One trace access resolved to a TVar slot (the 64-bit block address
    /// space is hashed down onto the slot array).
    struct Op {
        std::uint64_t slot;
        bool is_write;
    };

    /// Per-thread replay cursor: one stream plus its chunk buffers.
    struct Cursor {
        std::unique_ptr<trace::StreamSource> reader;
        std::size_t stream_index = 0;
        std::vector<trace::Access> buf;
        std::vector<Op> ops;
        std::uint32_t writes = 0;
    };

    static std::uint64_t next_instance_id() {
        static std::atomic<std::uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    /// Binds the calling thread to a cursor on first use: threads claim
    /// streams in arrival order (stream = claim index mod stream count), so
    /// a 1-thread run deterministically replays stream 0. The thread-local
    /// cache keyed by a unique instance id keeps the mutex off the steady
    /// state.
    Cursor& cursor() {
        thread_local std::uint64_t cached_id = ~std::uint64_t{0};
        thread_local Cursor* cached = nullptr;
        if (cached_id == id_ && cached) return *cached;
        const std::scoped_lock lock(mu_);
        auto& slot = cursors_[std::this_thread::get_id()];
        if (!slot) {
            slot = std::make_unique<Cursor>();
            slot->stream_index = next_stream_++ % source_->stream_count();
            slot->reader = source_->stream(slot->stream_index);
        }
        cached_id = id_;
        cached = slot.get();
        return *slot;
    }

    /// Pulls the next accesses_per_tx_ accesses (wrapping at end of stream)
    /// and pre-resolves them to slot operations, so the transaction body —
    /// which may re-execute on conflict — does no source I/O.
    void fill(Cursor& cur) {
        cur.buf.resize(accesses_per_tx_);
        std::size_t have = 0;
        bool reopened = false;
        while (have < accesses_per_tx_) {
            const std::size_t n = cur.reader->next(
                std::span(cur.buf).subspan(have));
            if (n == 0) {
                if (reopened) {
                    throw std::runtime_error(
                        "replay: source stream " +
                        std::to_string(cur.stream_index) + " is empty");
                }
                {
                    // stream() calls must be serialized (source.hpp);
                    // wrapping is rare (once per stream drain).
                    const std::scoped_lock lock(mu_);
                    cur.reader = source_->stream(cur.stream_index);
                }
                reopened = true;
                continue;
            }
            reopened = false;
            have += n;
        }
        cur.ops.clear();
        cur.writes = 0;
        for (const trace::Access& a : cur.buf) {
            cur.ops.push_back(
                Op{util::mix64(a.block) % slots_.size(), a.is_write});
            cur.writes += a.is_write ? 1 : 0;
        }
    }

    std::vector<stm::TVar<std::uint64_t>> slots_;
    std::shared_ptr<trace::TraceSource> source_;
    std::uint32_t accesses_per_tx_;
    std::uint64_t id_;
    std::atomic<std::uint64_t> writes_replayed_{0};
    std::mutex mu_;
    std::unordered_map<std::thread::id, std::unique_ptr<Cursor>> cursors_;
    std::size_t next_stream_ = 0;
};

// ---------------------------------------------------------------------------
// vacation — STAMP-style reservation system over transactional hash maps
// ---------------------------------------------------------------------------

/// Three resource classes (cars / flights / rooms), each with an
/// availability table (resource id -> free capacity) and a booking table
/// (customer id -> active bookings in that class). Operations:
///
///   reserve (45%) — an itinerary of `queries` (class, resource) picks for
///       one customer: each pick with free capacity is decremented and
///       booked (booking rows are inserted on first booking — tx_alloc).
///   cancel (45%)  — the same customer releases up to `queries` bookings;
///       a booking row that reaches zero is erased (tx_free), and the
///       capacity is returned to a random resource of the class.
///   update (10%)  — STAMP's table maintenance: one availability row is
///       erased and re-inserted with its value, churning a node through
///       the tx_free/tx_alloc pipeline without changing state.
///
/// Conservation invariant, per class: sum of free capacity plus sum of
/// active bookings equals rows * kCapacity — any lost or doubled update,
/// and any node dropped or resurrected by broken reclamation, breaks it.
class VacationWorkload final : public Workload {
public:
    static constexpr std::uint32_t kClasses = 3;
    static constexpr long kCapacity = 16;
    static constexpr std::uint32_t kMaxQueries = 8;

    VacationWorkload(std::uint64_t rows, std::uint64_t customers,
                     std::uint32_t queries)
        : rows_(rows), customers_(customers), queries_(queries) {
        if (rows == 0) throw std::invalid_argument("vacation rows must be > 0");
        if (customers == 0) {
            throw std::invalid_argument("vacation customers must be > 0");
        }
        if (queries == 0 || queries > kMaxQueries) {
            throw std::invalid_argument("vacation queries must be in [1, " +
                                        std::to_string(kMaxQueries) + "]");
        }
    }

    std::string_view name() const noexcept override { return "vacation"; }

    void prepare(stm::Stm& stm) override {
        for (std::uint32_t c = 0; c < kClasses; ++c) {
            avail_[c] = std::make_unique<Table>(stm, rows_ * 2);
            booked_[c] = std::make_unique<Table>(stm, customers_ * 2);
            for (std::uint64_t id = 0; id < rows_; ++id) {
                avail_[c]->put(static_cast<long>(id), kCapacity);
            }
        }
    }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        if (!avail_[0]) {
            throw std::logic_error("vacation: op() before prepare()");
        }
        // Operands are drawn before the transaction so a retry re-runs the
        // same logical operation.
        const std::uint64_t kind = rng.below(100);
        const long customer = static_cast<long>(rng.below(customers_));
        std::uint32_t cls[kMaxQueries];
        long res[kMaxQueries];
        for (std::uint32_t i = 0; i < queries_; ++i) {
            cls[i] = static_cast<std::uint32_t>(rng.below(kClasses));
            res[i] = static_cast<long>(rng.below(rows_));
        }
        if (kind < 45) {
            exec.atomically([&](stm::Transaction& tx) {
                for (std::uint32_t i = 0; i < queries_; ++i) {
                    Table& avail = *avail_[cls[i]];
                    const auto free = avail.get_in(tx, res[i]);
                    if (free && *free > 0) {
                        avail.add_in(tx, res[i], -1);
                        booked_[cls[i]]->add_in(tx, customer, 1);
                    }
                }
            });
        } else if (kind < 90) {
            exec.atomically([&](stm::Transaction& tx) {
                for (std::uint32_t i = 0; i < queries_; ++i) {
                    Table& booked = *booked_[cls[i]];
                    const auto active = booked.get_in(tx, customer);
                    if (active && *active > 0) {
                        if (*active == 1) {
                            booked.erase_in(tx, customer);
                        } else {
                            booked.add_in(tx, customer, -1);
                        }
                        avail_[cls[i]]->add_in(tx, res[i], 1);
                    }
                }
            });
        } else {
            exec.atomically([&](stm::Transaction& tx) {
                Table& avail = *avail_[cls[0]];
                const auto value = avail.get_in(tx, res[0]);
                if (value) {
                    avail.erase_in(tx, res[0]);
                    avail.put_in(tx, res[0], *value);
                }
            });
        }
    }

    void verify(std::uint64_t /*committed_ops*/) const override {
        for (std::uint32_t c = 0; c < kClasses; ++c) {
            long total = 0;
            bool negative = false;
            avail_[c]->unsafe_for_each([&](long, long v) {
                total += v;
                negative |= v < 0;
            });
            booked_[c]->unsafe_for_each([&](long, long v) {
                total += v;
                negative |= v < 0;
            });
            const long expected = static_cast<long>(rows_) * kCapacity;
            if (negative || total != expected) {
                throw std::runtime_error(
                    "vacation invariant violated in class " +
                    std::to_string(c) + ": available + booked " +
                    std::to_string(total) + " != capacity " +
                    std::to_string(expected) +
                    (negative ? " (negative entry)" : ""));
            }
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        for (std::uint32_t c = 0; c < kClasses; ++c) {
            const std::uint64_t tag = (c + 1) * 0x100000000ULL;
            avail_[c]->unsafe_for_each([&](long k, long v) {
                h += slot_digest(tag + static_cast<std::uint64_t>(k),
                                 static_cast<std::uint64_t>(v));
            });
            booked_[c]->unsafe_for_each([&](long k, long v) {
                h += slot_digest(tag * 7 + static_cast<std::uint64_t>(k),
                                 static_cast<std::uint64_t>(v));
            });
        }
        return h;
    }

private:
    using Table = stm::THashMap<long, long>;

    std::uint64_t rows_;
    std::uint64_t customers_;
    std::uint32_t queries_;
    std::array<std::unique_ptr<Table>, kClasses> avail_;
    std::array<std::unique_ptr<Table>, kClasses> booked_;
};

// ---------------------------------------------------------------------------
// kmeans — STAMP-style clustering kernel with accumulator-rebuild churn
// ---------------------------------------------------------------------------

/// Points (drawn per op from the thread's RNG) are assigned to the nearest
/// of k centroids; each assignment bumps the cluster's count and coordinate
/// sum in transactional maps (rows appear via tx_alloc). A periodic
/// recenter transaction folds every cluster's accumulators into its
/// centroid, moves them into the absorbed totals, and erases the rows
/// (tx_free) — so the maps are rebuilt from scratch continuously.
///
/// Invariant: live accumulator totals plus absorbed totals equal the
/// committed assignment count / coordinate sum.
class KmeansWorkload final : public Workload {
public:
    static constexpr std::uint32_t kMaxClusters = 32;

    KmeansWorkload(std::uint32_t clusters, std::uint32_t recenter_every,
                   std::uint64_t space)
        : k_(clusters),
          recenter_every_(recenter_every),
          space_(space),
          centroids_(clusters == 0 ? 1 : clusters) {
        if (clusters == 0 || clusters > kMaxClusters) {
            throw std::invalid_argument("kmeans clusters must be in [1, " +
                                        std::to_string(kMaxClusters) + "]");
        }
        if (recenter_every == 0) {
            throw std::invalid_argument("kmeans recenter_every must be > 0");
        }
        if (space == 0) throw std::invalid_argument("kmeans space must be > 0");
        for (std::uint32_t c = 0; c < k_; ++c) {
            // Spread initial centroids evenly over the coordinate space.
            centroids_[c].unsafe_write(static_cast<long>(
                (2 * static_cast<std::uint64_t>(c) + 1) * space_ / (2 * k_)));
        }
    }

    std::string_view name() const noexcept override { return "kmeans"; }

    void prepare(stm::Stm& stm) override {
        counts_ = std::make_unique<Table>(stm, k_ * 2);
        sums_ = std::make_unique<Table>(stm, k_ * 2);
    }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        if (!counts_) throw std::logic_error("kmeans: op() before prepare()");
        const bool recenter = rng.below(recenter_every_) == 0;
        const long point = static_cast<long>(rng.below(space_));
        if (recenter) {
            exec.atomically([&](stm::Transaction& tx) {
                for (std::uint32_t c = 0; c < k_; ++c) {
                    const long key = static_cast<long>(c);
                    const auto count = counts_->get_in(tx, key);
                    if (!count) continue;
                    const long sum = sums_->get_in(tx, key).value_or(0);
                    centroids_[c].write(tx, sum / *count);
                    counts_->erase_in(tx, key);
                    sums_->erase_in(tx, key);
                    absorbed_count_.write(tx, absorbed_count_.read(tx) + *count);
                    absorbed_sum_.write(tx, absorbed_sum_.read(tx) + sum);
                }
            });
            return;
        }
        exec.atomically([&](stm::Transaction& tx) {
            std::uint32_t nearest = 0;
            long best = std::numeric_limits<long>::max();
            for (std::uint32_t c = 0; c < k_; ++c) {
                const long d = std::labs(centroids_[c].read(tx) - point);
                if (d < best) {
                    best = d;
                    nearest = c;
                }
            }
            counts_->add_in(tx, static_cast<long>(nearest), 1);
            sums_->add_in(tx, static_cast<long>(nearest), point);
        });
        // Published only after the commit, so aborted attempts never count.
        assigns_.fetch_add(1, std::memory_order_relaxed);
        point_sum_.fetch_add(static_cast<std::uint64_t>(point),
                             std::memory_order_relaxed);
    }

    void verify(std::uint64_t /*committed_ops*/) const override {
        long live_count = 0;
        long live_sum = 0;
        counts_->unsafe_for_each([&](long, long v) { live_count += v; });
        sums_->unsafe_for_each([&](long, long v) { live_sum += v; });
        const long total_count =
            live_count + absorbed_count_.unsafe_read();
        const long total_sum = live_sum + absorbed_sum_.unsafe_read();
        const auto expected_count =
            static_cast<long>(assigns_.load(std::memory_order_relaxed));
        const auto expected_sum =
            static_cast<long>(point_sum_.load(std::memory_order_relaxed));
        if (total_count != expected_count || total_sum != expected_sum) {
            throw std::runtime_error(
                "kmeans invariant violated: assignments " +
                std::to_string(total_count) + "/" +
                std::to_string(expected_count) + ", coordinate sum " +
                std::to_string(total_sum) + "/" +
                std::to_string(expected_sum));
        }
    }

    std::uint64_t state_hash() const override {
        std::uint64_t h = 0;
        counts_->unsafe_for_each([&](long k, long v) {
            h += slot_digest(static_cast<std::uint64_t>(k) + 1,
                             static_cast<std::uint64_t>(v));
        });
        sums_->unsafe_for_each([&](long k, long v) {
            h += slot_digest(static_cast<std::uint64_t>(k) + 1000,
                             static_cast<std::uint64_t>(v));
        });
        for (std::uint32_t c = 0; c < k_; ++c) {
            h += slot_digest(c + 2000, static_cast<std::uint64_t>(
                                           centroids_[c].unsafe_read()));
        }
        h += slot_digest(3000, static_cast<std::uint64_t>(
                                   absorbed_count_.unsafe_read()));
        h += slot_digest(3001,
                         static_cast<std::uint64_t>(absorbed_sum_.unsafe_read()));
        return h;
    }

private:
    using Table = stm::THashMap<long, long>;

    std::uint32_t k_;
    std::uint32_t recenter_every_;
    std::uint64_t space_;
    std::vector<stm::TVar<long>> centroids_;
    stm::TVar<long> absorbed_count_{0};
    stm::TVar<long> absorbed_sum_{0};
    std::unique_ptr<Table> counts_;
    std::unique_ptr<Table> sums_;
    std::atomic<std::uint64_t> assigns_{0};
    std::atomic<std::uint64_t> point_sum_{0};
};

// ---------------------------------------------------------------------------
// pipeline — intruder-style staged packet processing over queues
// ---------------------------------------------------------------------------

/// A three-stage packet pipeline in the mold of STAMP's intruder: stage
/// boundaries are bounded transactional queues, so every operation moves a
/// packet (a queue node — tx_alloc on push, tx_free on pop) through
/// allocator-heavy handoffs:
///
///   decode    — inject a fresh packet (flow id + payload) into the decoded
///               queue; dropped (not injected) when the queue is full.
///   analyze   — pop one decoded packet, bump its flow's live counter in
///               the flows map (rows appear via tx_alloc), and forward it
///               to the analyzed queue; if that queue is full the packet is
///               retired directly (the overflow path skips the map).
///   rebalance — pop one analyzed packet, decrement its flow counter
///               (erasing the row — tx_free — when it reaches zero), and
///               retire it into transactional totals.
///
/// Every op commits exactly one transaction (pops of empty queues commit as
/// no-ops). Conservation invariant: packets injected == packets still in
/// the two queues + packets retired, the same for payload sums, and the
/// flows map's live counters must equal the analyzed queue's per-flow
/// content. A block dropped, resurrected, or double-freed by a broken
/// allocator breaks one of them.
class PipelineWorkload final : public Workload {
public:
    /// Payload values live below this bound; a packet word is
    /// flow * kPayloadSpace + payload.
    static constexpr long kPayloadSpace = 1L << 20;

    PipelineWorkload(std::uint64_t capacity, std::uint64_t flows)
        : capacity_(capacity), flow_count_(flows) {
        if (capacity == 0) {
            throw std::invalid_argument("pipeline capacity must be > 0");
        }
        if (flows == 0 || flows > 4096) {
            throw std::invalid_argument("pipeline flows must be in [1, 4096]");
        }
    }

    std::string_view name() const noexcept override { return "pipeline"; }

    void prepare(stm::Stm& stm) override {
        decoded_ = std::make_unique<Queue>(stm, capacity_);
        analyzed_ = std::make_unique<Queue>(stm, capacity_);
        flows_ = std::make_unique<Table>(stm, flow_count_ * 2);
    }

    void op(stm::Executor& exec, util::Xoshiro256& rng) override {
        if (!decoded_) throw std::logic_error("pipeline: op() before prepare()");
        // Operands are drawn before the transaction so a retry re-runs the
        // same logical operation.
        const std::uint64_t kind = rng.below(3);
        const long flow = static_cast<long>(rng.below(flow_count_));
        const long payload = static_cast<long>(
            rng.below(static_cast<std::uint64_t>(kPayloadSpace)));
        if (kind == 0) {  // decode
            const long packet = flow * kPayloadSpace + payload;
            const bool pushed = exec.atomically([&](stm::Transaction& tx) {
                return decoded_->try_push_in(tx, packet);
            });
            // Published only after the commit, so aborted attempts never
            // count; a full-queue drop never entered the pipeline at all.
            if (pushed) {
                injected_.fetch_add(1, std::memory_order_relaxed);
                injected_sum_.fetch_add(static_cast<std::uint64_t>(payload),
                                        std::memory_order_relaxed);
            }
        } else if (kind == 1) {  // analyze
            exec.atomically([&](stm::Transaction& tx) {
                const auto packet = decoded_->try_pop_in(tx);
                if (!packet) return;
                if (analyzed_->try_push_in(tx, *packet)) {
                    flows_->add_in(tx, *packet / kPayloadSpace, 1);
                } else {
                    retire_in(tx, *packet);  // overflow: retire directly
                }
            });
        } else {  // rebalance
            exec.atomically([&](stm::Transaction& tx) {
                const auto packet = analyzed_->try_pop_in(tx);
                if (!packet) return;
                const long f = *packet / kPayloadSpace;
                const auto live = flows_->get_in(tx, f);
                if (live && *live <= 1) {
                    flows_->erase_in(tx, f);
                } else {
                    flows_->add_in(tx, f, -1);
                }
                retire_in(tx, *packet);
            });
        }
    }

    void verify(std::uint64_t /*committed_ops*/) const override {
        std::uint64_t in_decoded = 0, decoded_sum = 0;
        decoded_->unsafe_for_each([&](long v) {
            ++in_decoded;
            decoded_sum += static_cast<std::uint64_t>(v % kPayloadSpace);
        });
        std::uint64_t in_analyzed = 0, analyzed_sum = 0;
        std::unordered_map<long, long> analyzed_flows;
        analyzed_->unsafe_for_each([&](long v) {
            ++in_analyzed;
            analyzed_sum += static_cast<std::uint64_t>(v % kPayloadSpace);
            ++analyzed_flows[v / kPayloadSpace];
        });
        const auto retired =
            static_cast<std::uint64_t>(retired_count_.unsafe_read());
        const std::uint64_t accounted = in_decoded + in_analyzed + retired;
        const std::uint64_t injected =
            injected_.load(std::memory_order_relaxed);
        if (accounted != injected) {
            throw std::runtime_error(
                "pipeline invariant violated: " + std::to_string(accounted) +
                " packets accounted for (" + std::to_string(in_decoded) +
                " decoded + " + std::to_string(in_analyzed) + " analyzed + " +
                std::to_string(retired) + " retired) != " +
                std::to_string(injected) + " injected");
        }
        const std::uint64_t sum_accounted =
            decoded_sum + analyzed_sum +
            static_cast<std::uint64_t>(retired_sum_.unsafe_read());
        if (sum_accounted != injected_sum_.load(std::memory_order_relaxed)) {
            throw std::runtime_error(
                "pipeline invariant violated: payload sum " +
                std::to_string(sum_accounted) + " != injected sum " +
                std::to_string(
                    injected_sum_.load(std::memory_order_relaxed)));
        }
        // The flows map must mirror the analyzed queue's live content.
        std::uint64_t flow_rows = 0;
        bool flows_ok = true;
        flows_->unsafe_for_each([&](long k, long v) {
            ++flow_rows;
            const auto it = analyzed_flows.find(k);
            flows_ok &= it != analyzed_flows.end() && it->second == v;
        });
        if (!flows_ok || flow_rows != analyzed_flows.size()) {
            throw std::runtime_error(
                "pipeline invariant violated: flows map (" +
                std::to_string(flow_rows) +
                " rows) does not mirror the analyzed queue (" +
                std::to_string(analyzed_flows.size()) + " live flows)");
        }
    }

    std::uint64_t state_hash() const override {
        // Queue content is position-sensitive; the traversal order is
        // deterministic for the 1-thread determinism contract.
        std::uint64_t h = 0;
        std::uint64_t pos = 0;
        decoded_->unsafe_for_each([&](long v) {
            h += slot_digest(++pos, static_cast<std::uint64_t>(v));
        });
        pos = 1u << 20;
        analyzed_->unsafe_for_each([&](long v) {
            h += slot_digest(++pos, static_cast<std::uint64_t>(v));
        });
        flows_->unsafe_for_each([&](long k, long v) {
            h += slot_digest((std::uint64_t{1} << 21) +
                                 static_cast<std::uint64_t>(k),
                             static_cast<std::uint64_t>(v));
        });
        h += slot_digest(std::uint64_t{1} << 22,
                         static_cast<std::uint64_t>(
                             retired_count_.unsafe_read()));
        h += slot_digest((std::uint64_t{1} << 22) + 1,
                         static_cast<std::uint64_t>(retired_sum_.unsafe_read()));
        return h;
    }

private:
    using Queue = stm::TQueue<long>;
    using Table = stm::THashMap<long, long>;

    void retire_in(stm::Transaction& tx, long packet) {
        retired_count_.write(tx, retired_count_.read(tx) + 1);
        retired_sum_.write(tx, retired_sum_.read(tx) + packet % kPayloadSpace);
    }

    std::uint64_t capacity_;
    std::uint64_t flow_count_;
    std::unique_ptr<Queue> decoded_;
    std::unique_ptr<Queue> analyzed_;
    std::unique_ptr<Table> flows_;
    stm::TVar<long> retired_count_{0};
    stm::TVar<long> retired_sum_{0};
    std::atomic<std::uint64_t> injected_{0};
    std::atomic<std::uint64_t> injected_sum_{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// phases — rotating contention regimes for the adaptive runtime
// ---------------------------------------------------------------------------

PhaseWorkload::PhaseWorkload(std::uint64_t slots, std::uint32_t tx_size,
                             std::uint32_t scan_tx_size, double skew,
                             std::uint64_t phase_ops,
                             std::uint32_t yield_every)
    : slots_(slots),
      sampler_(slots, skew),
      tx_size_(tx_size),
      scan_tx_size_(scan_tx_size),
      phase_ops_(phase_ops),
      yield_every_(yield_every) {
    if (slots == 0) throw std::invalid_argument("workload slots must be > 0");
    check_tx_size(tx_size);
    check_tx_size(scan_tx_size);
}

void PhaseWorkload::set_phase(std::uint32_t phase) {
    phase_.store(phase % kPhases, std::memory_order_relaxed);
}

std::uint32_t PhaseWorkload::phase() const noexcept {
    if (phase_ops_ == 0) return phase_.load(std::memory_order_relaxed);
    return static_cast<std::uint32_t>(
        (ops_issued_.load(std::memory_order_relaxed) / phase_ops_) % kPhases);
}

void PhaseWorkload::op(stm::Executor& exec, util::Xoshiro256& rng) {
    const std::uint32_t ph =
        phase_ops_ == 0
            ? phase_.load(std::memory_order_relaxed)
            : static_cast<std::uint32_t>(
                  (ops_issued_.fetch_add(1, std::memory_order_relaxed) /
                   phase_ops_) %
                  kPhases);
    // Operands drawn before the transaction: a retry re-runs the same
    // logical operation, and rng advances once per op.
    std::uint64_t picks[kMaxTxSize];
    std::uint32_t n = 0;
    std::uint64_t writes = 0;
    const std::uint32_t yield_every = yield_every_;
    const auto maybe_yield = [yield_every](std::uint32_t i) {
        if (yield_every != 0 && (i + 1) % yield_every == 0) {
            std::this_thread::yield();
        }
    };
    switch (ph) {
        case 0:  // uniform increments, small footprint
            n = tx_size_;
            writes = tx_size_;
            for (std::uint32_t i = 0; i < n; ++i) {
                picks[i] = rng.below(slots_.size());
            }
            exec.atomically([&](stm::Transaction& tx) {
                for (std::uint32_t i = 0; i < n; ++i) {
                    auto& slot = slots_[picks[i]];
                    slot.write(tx, slot.read(tx) + 1);
                    maybe_yield(i);
                }
            });
            break;
        case 1:  // Zipf hot spot: one hot increment *first* (an eager
                 // engine then holds the hot block across the rest of the
                 // body; lazy acquisition shrinks the window to the commit),
                 // then Zipf reads.
            n = tx_size_;
            writes = 1;
            for (std::uint32_t i = 0; i < n; ++i) {
                picks[i] = sampler_.sample(rng);
            }
            exec.atomically([&](stm::Transaction& tx) {
                auto& hot = slots_[picks[0]];
                hot.write(tx, hot.read(tx) + 1);
                maybe_yield(0);
                std::uint64_t acc = 0;
                for (std::uint32_t i = 1; i < n; ++i) {
                    acc += slots_[picks[i]].read(tx);
                    maybe_yield(i);
                }
                (void)acc;
            });
            break;
        default:  // scan: large uniform footprint, one increment
            n = scan_tx_size_;
            writes = 1;
            for (std::uint32_t i = 0; i < n; ++i) {
                picks[i] = rng.below(slots_.size());
            }
            exec.atomically([&](stm::Transaction& tx) {
                std::uint64_t acc = 0;
                for (std::uint32_t i = 0; i + 1 < n; ++i) {
                    acc += slots_[picks[i]].read(tx);
                    maybe_yield(i);
                }
                (void)acc;
                auto& last = slots_[picks[n - 1]];
                last.write(tx, last.read(tx) + 1);
            });
            break;
    }
    // Post-commit: the attempt that reaches here committed exactly once.
    increments_.fetch_add(writes, std::memory_order_relaxed);
}

void PhaseWorkload::verify(std::uint64_t committed_ops) const {
    (void)committed_ops;  // increments per op vary by phase
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.unsafe_read();
    const std::uint64_t expected = increments_.load(std::memory_order_relaxed);
    if (sum != expected) {
        throw std::runtime_error(
            "phases invariant violated: slot sum " + std::to_string(sum) +
            " != committed increments " + std::to_string(expected));
    }
}

std::uint64_t PhaseWorkload::state_hash() const {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        h += slot_digest(i, slots_[i].unsafe_read());
    }
    return h;
}

namespace {

/// Registers the built-in workloads exactly once (same bootstrap pattern as
/// the table and backend registries).
WorkloadRegistry& registry() {
    static const bool bootstrapped = [] {
        auto& r = WorkloadRegistry::instance();
        r.add_default("counters", [](const config::Config& cfg) {
            return std::make_unique<CounterArrayWorkload>(
                cfg.get_u64("slots", 1u << 16), cfg.get_u32("tx_size", 4));
        });
        r.add_default("zipf", [](const config::Config& cfg) {
            return std::make_unique<ZipfWorkload>(
                cfg.get_u64("slots", 1u << 16), cfg.get_u32("tx_size", 4),
                cfg.get_double("skew", 0.99));
        });
        r.add_default("bank", [](const config::Config& cfg) {
            return std::make_unique<BankWorkload>(
                cfg.get_u64("accounts", 1024));
        });
        r.add_default("replay", [](const config::Config& cfg) {
            std::shared_ptr<trace::TraceSource> source =
                trace::make_trace_source(cfg);
            return std::make_unique<ReplayWorkload>(
                std::move(source), cfg.get_u64("slots", 1u << 16),
                cfg.get_u32("tx_size", 16));
        });
        r.add_default("phases", [](const config::Config& cfg) {
            auto w = std::make_unique<PhaseWorkload>(
                cfg.get_u64("slots", 1u << 16), cfg.get_u32("tx_size", 4),
                cfg.get_u32("scan_tx", 32), cfg.get_double("skew", 0.99),
                cfg.get_u64("phase_ops", 0), cfg.get_u32("yield_every", 0));
            w->set_phase(cfg.get_u32("phase", 0));
            return w;
        });
        r.add_default("vacation", [](const config::Config& cfg) {
            return std::make_unique<VacationWorkload>(
                cfg.get_u64("rows", 128), cfg.get_u64("customers", 64),
                cfg.get_u32("queries", 2));
        });
        r.add_default("kmeans", [](const config::Config& cfg) {
            return std::make_unique<KmeansWorkload>(
                cfg.get_u32("clusters", 8), cfg.get_u32("recenter_every", 64),
                cfg.get_u64("space", 1024));
        });
        r.add_default("pipeline", [](const config::Config& cfg) {
            return std::make_unique<PipelineWorkload>(
                cfg.get_u64("capacity", 256), cfg.get_u64("flows", 64));
        });
        return true;
    }();
    (void)bootstrapped;
    return WorkloadRegistry::instance();
}

}  // namespace

std::vector<std::string> workload_names() { return registry().names(); }

std::unique_ptr<Workload> make_workload(const config::Config& cfg) {
    return registry().create(cfg.get("workload", "counters"), cfg);
}

}  // namespace tmb::exec
