// workload.hpp — registry-selected transactional workloads for the
// execution engine.
//
// A Workload owns shared transactional state (TVar arrays) and exposes one
// operation that engine threads execute over and over through their
// per-thread stm::Executor. Workloads are constructed *by name* through the
// config registry — exactly like tables and backends — so the parallel
// bench sweeps `--workload=` the way every other driver sweeps `--table=`:
//
//   "counters"  — increment tx_size uniformly random slots of a large
//                 counter array per transaction (low contention when
//                 slots >> threads · tx_size; the scaling baseline).
//   "zipf"      — tx_size-1 Zipf-distributed reads plus one Zipf-
//                 distributed increment per transaction (hot blocks pin hot
//                 table entries; contention rises with `skew`).
//   "bank"      — transfer a random amount between two random accounts
//                 (read-modify-write pairs; the classic STM invariant demo).
//   "replay"    — feed a registry-selected trace source (trace/source.hpp,
//                 `source=jbb|zipf|spec:<p>|file:<path>`) through the STM:
//                 each engine thread owns one stream cursor and replays
//                 tx_size consecutive accesses per transaction (reads read,
//                 writes increment), wrapping at end of stream. This closes
//                 the loop between the paper's trace experiments and the
//                 real-thread engine: any trace that drives the simulators
//                 can now contend on real ownership metadata.
//   "phases"    — the adversarial phase-change workload for the adaptive
//                 runtime (PhaseWorkload below): rotates between a uniform
//                 low-contention phase, a Zipf hot-spot phase, and a
//                 large-footprint scan phase. No single static engine shape
//                 is right for all three.
//   "vacation"  — STAMP-style travel reservation system over THashMaps:
//                 three resource classes (cars/flights/rooms) with
//                 per-resource availability and per-customer booking
//                 tables. Reservations, cancellations and table updates
//                 insert and erase map nodes through tx_alloc/tx_free, so
//                 the workload exercises the runtime's speculative
//                 allocation and epoch reclamation under contention.
//                 Invariant: per class, available + booked == capacity.
//   "kmeans"    — STAMP-style clustering kernel: points are assigned to the
//                 nearest centroid (cluster accumulator maps grow via
//                 tx_alloc), and periodic recenter transactions absorb the
//                 accumulators into the centroids and erase the rows
//                 (tx_free) — a rebuild-heavy allocation churn pattern.
//                 Invariant: live + absorbed assignments == assign ops.
//   "pipeline"  — intruder-style staged packet processing: decode injects
//                 packets into a bounded transactional queue, analyze moves
//                 them to a second queue while tracking per-flow counts in
//                 a hash map, rebalance retires them — every stage handoff
//                 is a queue-node tx_alloc/tx_free, making this the purest
//                 allocator-throughput workload of the set. Invariant:
//                 injected == queued + retired (packets and payload sums).
//
// Every workload carries a checkable invariant (`verify`) and an
// order-independent `state_hash` so the engine's stress and determinism
// tests apply to all of them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <atomic>

#include "config/config.hpp"
#include "config/registry.hpp"
#include "stm/stm.hpp"
#include "trace/zipf.hpp"
#include "util/rng.hpp"

namespace tmb::exec {

/// A named transactional workload. `op` is called concurrently from many
/// engine threads; all shared state must be accessed through `exec`'s
/// transactions (plus non-transactional initialization in the constructor,
/// before the object is published to threads).
class Workload {
public:
    virtual ~Workload() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// One-time binding to the runtime that will execute the workload,
    /// before any thread runs op(). Workloads built on the transactional
    /// containers create and populate them here (containers need the Stm
    /// at construction); array-based workloads ignore it. ParallelRunner
    /// calls this once from its constructor.
    virtual void prepare(stm::Stm& stm) { (void)stm; }

    /// Executes one operation: exactly one committed transaction (the
    /// engine counts ops and equates them with commits). `rng` is the
    /// calling thread's private substream — operand selection must use it
    /// and nothing else, so a single-threaded run is deterministic.
    virtual void op(stm::Executor& exec, util::Xoshiro256& rng) = 0;

    /// Checks the workload invariant at quiescence (all threads joined);
    /// `committed_ops` is the engine-wide completed-operation count.
    /// Throws std::runtime_error on violation — a lost or doubled update.
    virtual void verify(std::uint64_t committed_ops) const = 0;

    /// Order-independent digest of the shared state at quiescence, for
    /// determinism tests (two 1-thread runs with one seed must agree).
    [[nodiscard]] virtual std::uint64_t state_hash() const = 0;
};

/// The adversarial phase-change workload driving the adaptive-runtime
/// experiments (bench/ext_phase_adaptive.cpp). Three phases, each favoring
/// a different engine shape:
///
///   0 "uniform" — tx_size uniform increments over the slot array: low
///     contention, almost no aliasing; a small tagless table wins.
///   1 "hot"     — tx_size-1 Zipf reads + one Zipf increment: a few hot
///     blocks pin hot metadata entries; growing a tagless table cannot
///     help (the collisions are true same-block conflicts made false by
///     neighbors aliasing *into* the hot entries), so tagged or lazy
///     acquisition wins.
///   2 "scan"    — scan_tx_size-1 uniform reads + one uniform increment:
///     footprint W jumps, and the birthday term (C-1)W²/2N makes a small
///     tagless table alias constantly; a large table wins.
///
/// Phases change either manually (`set_phase`, the bench's per-phase
/// measurement mode) or automatically every `phase_ops` operations
/// (`phase_ops > 0`, the end-to-end adversarial mode). The invariant is
/// commutative — the slot sum equals the committed increments — so it holds
/// across phase boundaries and engine switches.
///
/// `yield_every > 0` inserts an OS yield after every K transactional
/// accesses (the stm_backend_ablation idiom): transactions from different
/// threads then genuinely overlap even on a single core, so the conflict
/// and aliasing costs the phases are built around are structural rather
/// than a preemption lottery — and an aborted attempt re-pays its yields,
/// making wasted work visible in wall-clock time.
class PhaseWorkload final : public Workload {
public:
    static constexpr std::uint32_t kPhases = 3;

    PhaseWorkload(std::uint64_t slots, std::uint32_t tx_size,
                  std::uint32_t scan_tx_size, double skew,
                  std::uint64_t phase_ops, std::uint32_t yield_every);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "phases";
    }
    void op(stm::Executor& exec, util::Xoshiro256& rng) override;
    void verify(std::uint64_t committed_ops) const override;
    [[nodiscard]] std::uint64_t state_hash() const override;

    /// Pins the current phase (manual mode; ignored when phase_ops > 0).
    void set_phase(std::uint32_t phase);
    [[nodiscard]] std::uint32_t phase() const noexcept;

private:
    std::vector<stm::TVar<std::uint64_t>> slots_;
    trace::ZipfianSampler sampler_;
    std::uint32_t tx_size_;
    std::uint32_t scan_tx_size_;
    std::uint64_t phase_ops_;
    std::uint32_t yield_every_;
    std::atomic<std::uint32_t> phase_{0};
    std::atomic<std::uint64_t> ops_issued_{0};
    std::atomic<std::uint64_t> increments_{0};
};

/// The process-wide workload registry; external workloads can be added at
/// runtime and become selectable by the engine, bench and smoke tool.
using WorkloadRegistry = config::Registry<Workload>;

/// Registered workload names, in registration order.
[[nodiscard]] std::vector<std::string> workload_names();

/// Creates a workload from a Config. Keys:
///   workload  counters | zipf | bank | replay | phases | vacation |
///             kmeans | pipeline (default "counters")
///   slots     counter/zipf/replay/phases array size (default 65536;
///             accepts "64k")
///   tx_size   transactional accesses per operation (default 4; replay
///             default 16, up to 4096)
///   skew      zipf skew s (default 0.99)
///   accounts  bank account count (default 1024)
///   scan_tx   phases scan-phase footprint (default 32)
///   phase_ops phases auto-rotation period in ops (default 0 = manual)
///   yield_every  phases: OS-yield after every K accesses inside the
///             transaction (default 0 = never), forcing real overlap
///   source, accesses, profile, ...   replay trace source keys
///             (trace::make_trace_source; `threads` doubles as the
///             generator stream count, so each engine thread replays its
///             own stream)
///   rows, customers, queries   vacation: resources per class (default
///             128), customer count (default 64), itinerary size per
///             operation (default 2, up to 8)
///   clusters, recenter_every, space   kmeans: centroid count (default 8,
///             up to 32), mean ops between recenter transactions (default
///             64), point coordinate space (default 1024)
///   capacity, flows   pipeline: per-stage queue bound (default 256),
///             distinct flow ids (default 64, up to 4096)
[[nodiscard]] std::unique_ptr<Workload> make_workload(const config::Config& cfg);

}  // namespace tmb::exec
