// parallel_runner.hpp — the real-thread execution engine.
//
// Everything below the exec layer models or measures concurrency without
// ever creating it: the simulators interleave logical transactions in one
// loop, and the benches drive the STM from a single thread. ParallelRunner
// is the layer that actually spawns std::threads and contends on the
// ownership metadata, turning the paper's simulated concurrency claims into
// measured ones:
//
//   * N threads, each bound to one stm::Executor (one backend context /
//     table TxId per thread, acquired once, not per transaction);
//   * non-overlapping per-thread RNG substreams via Xoshiro256::jump()
//     (thread t's stream starts 2^128·t steps into the seed's sequence);
//   * per-thread Instrumentation shards, merged into one StmStats at join —
//     the hot path touches no shared counter;
//   * registry-selected everything: `--backend=`/`--table=` pick the STM,
//     `--workload=` picks the closure, exactly like every other driver.
//
// The run is bounded by an operation budget (`--ops=`, per thread;
// deterministic for 1 thread) or by wall-clock time (`--duration-ms=`,
// throughput mode).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "exec/workload.hpp"
#include "stm/stm.hpp"

namespace tmb::exec {

/// Engine shape. STM and workload shape are parsed separately from the same
/// Config (stm::stm_config_from, make_workload).
struct ParallelConfig {
    std::uint32_t threads = 4;
    /// Operations per thread (ignored when duration_ms > 0).
    std::uint64_t ops_per_thread = 10000;
    /// Wall-clock bound in milliseconds; 0 = use the ops budget.
    std::uint32_t duration_ms = 0;
    std::uint64_t seed = 0x5eed0eec0ffeeULL;
    std::string workload = "counters";
};

/// Parses engine keys: `threads`, `ops`, `duration_ms`, `seed`, `workload`.
[[nodiscard]] ParallelConfig parallel_config_from(const config::Config& cfg);

/// Outcome of one engine run.
struct ParallelResult {
    /// Engine-wide stats: per-thread shards merged with the Stm instance
    /// block (which carries the backend's true/false conflict counts).
    stm::StmStats stats;
    /// Each thread's private shard, in thread order.
    std::vector<stm::StmStats> per_thread;
    std::uint64_t ops = 0;               ///< completed operations (== commits)
    double elapsed_seconds = 0.0;        ///< spawn-to-join wall clock
    std::uint64_t state_hash = 0;        ///< workload digest at quiescence

    [[nodiscard]] double commits_per_second() const noexcept {
        return elapsed_seconds > 0.0
                   ? static_cast<double>(stats.commits) / elapsed_seconds
                   : 0.0;
    }
};

/// The execution engine. Construction validates the thread count against
/// the selected backend's executor capacity (62 for `atomic`, 64 for the
/// lock-based tables) and fails fast with the actual cap in the message.
class ParallelRunner {
public:
    /// Builds engine, STM and workload from one Config — the all-flags path
    /// (`--threads=8 --backend=atomic --workload=zipf --ops=100000 ...`).
    explicit ParallelRunner(const config::Config& cfg);

    /// Pre-built components (tests that need to inspect the workload).
    ParallelRunner(ParallelConfig config, std::unique_ptr<stm::Stm> stm,
                   std::unique_ptr<Workload> workload);

    ParallelRunner(const ParallelRunner&) = delete;
    ParallelRunner& operator=(const ParallelRunner&) = delete;

    /// Spawns the threads, drives the workload, joins, merges shards, and
    /// checks the workload invariant (throws std::runtime_error if the
    /// backend lost or doubled an update). Callable repeatedly: the
    /// workload state persists, so the invariant is verified against the
    /// runner-lifetime operation total; each result reports its own run's
    /// shards and wall clock.
    [[nodiscard]] ParallelResult run();

    [[nodiscard]] const ParallelConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] stm::Stm& stm() noexcept { return *stm_; }
    [[nodiscard]] Workload& workload() noexcept { return *workload_; }

    /// Runner-lifetime stats: every run() call's merged shards and instance
    /// deltas, including runs that ended by rethrowing a worker exception.
    /// The shards are merged before the rethrow, so the surviving threads'
    /// commit/abort/attempt counts are observable here even when run()
    /// never returned a ParallelResult.
    [[nodiscard]] const stm::StmStats& lifetime_stats() const noexcept {
        return lifetime_stats_;
    }

private:
    ParallelConfig config_;
    std::unique_ptr<stm::Stm> stm_;
    std::unique_ptr<Workload> workload_;
    std::uint64_t lifetime_ops_ = 0;
    stm::StmStats lifetime_stats_;
};

}  // namespace tmb::exec
