#include "exec/parallel_runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace tmb::exec {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ParallelConfig parallel_config_from(const config::Config& cfg) {
    ParallelConfig out;
    out.threads = cfg.get_u32("threads", out.threads);
    out.ops_per_thread = cfg.get_u64("ops", out.ops_per_thread);
    out.duration_ms = cfg.get_u32("duration_ms", out.duration_ms);
    if (cfg.has("duration-ms")) {  // dashed-flag alias
        out.duration_ms = cfg.get_u32("duration-ms", out.duration_ms);
    }
    out.seed = cfg.get_u64("seed", out.seed);
    out.workload = cfg.get("workload", out.workload);
    return out;
}

ParallelRunner::ParallelRunner(const config::Config& cfg)
    : ParallelRunner(parallel_config_from(cfg), stm::Stm::create(cfg),
                     make_workload(cfg)) {}

ParallelRunner::ParallelRunner(ParallelConfig config,
                               std::unique_ptr<stm::Stm> stm,
                               std::unique_ptr<Workload> workload)
    : config_(std::move(config)),
      stm_(std::move(stm)),
      workload_(std::move(workload)) {
    if (config_.threads < 1) {
        throw std::invalid_argument("threads must be >= 1");
    }
    // Fail fast instead of deadlocking in make_executor: each thread pins
    // one backend context, and table backends have finite TxId capacity
    // (62 for the atomic table — the cap this engine exists to respect).
    const std::uint32_t cap = stm_->max_live_executors();
    if (config_.threads > cap) {
        throw std::invalid_argument(
            "threads=" + std::to_string(config_.threads) +
            " exceeds the '" +
            std::string(stm::to_string(stm_->config().backend)) +
            "' backend's capacity of " + std::to_string(cap) +
            " concurrently live transactions");
    }
    // Container-backed workloads build their transactional state here —
    // once, before any engine thread exists.
    workload_->prepare(*stm_);
}

ParallelResult ParallelRunner::run() {
    const std::uint32_t n = config_.threads;

    // Executors are created sequentially on this thread so thread t is bound
    // to slot/TxId t — deterministic and friendly to per-slot diagnostics.
    std::vector<std::unique_ptr<stm::Executor>> executors;
    executors.reserve(n);
    for (std::uint32_t t = 0; t < n; ++t) {
        executors.push_back(stm_->make_executor());
    }

    // Non-overlapping RNG substreams: thread t's generator starts 2^128 · t
    // steps into the seed's master sequence (thread 0 == the plain seeded
    // stream, which is what the 1-thread determinism contract relies on).
    std::vector<util::Xoshiro256> rngs;
    rngs.reserve(n);
    util::Xoshiro256 substream{config_.seed};
    for (std::uint32_t t = 0; t < n; ++t) {
        rngs.push_back(substream);
        substream.jump();
    }

    std::vector<std::uint64_t> ops_done(n, 0);
    std::vector<std::exception_ptr> errors(n);
    std::atomic<bool> go{false};

    // Instance-block snapshot so repeated run() calls report only their own
    // conflict classification, not the Stm's cumulative history.
    const stm::StmStats before = stm_->stats();

    const auto deadline =
        Clock::now() + std::chrono::milliseconds(config_.duration_ms);
    const bool timed = config_.duration_ms > 0;

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::uint32_t t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
            // Start barrier: line every thread up before the clock matters,
            // so short timed runs measure contention, not spawn skew.
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            stm::Executor& exec = *executors[t];
            util::Xoshiro256& rng = rngs[t];
            std::uint64_t done = 0;  // thread-local; published once at exit
            try {
                if (timed) {
                    while (Clock::now() < deadline) {
                        workload_->op(exec, rng);
                        ++done;
                    }
                } else {
                    for (std::uint64_t i = 0; i < config_.ops_per_thread; ++i) {
                        workload_->op(exec, rng);
                        ++done;
                    }
                }
            } catch (...) {
                errors[t] = std::current_exception();
            }
            ops_done[t] = done;
        });
    }

    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    const auto end = Clock::now();

    ParallelResult result;
    result.elapsed_seconds =
        std::chrono::duration<double>(end - start).count();
    for (std::uint32_t t = 0; t < n; ++t) {
        result.ops += ops_done[t];
        result.per_thread.push_back(executors[t]->stats());
    }
    // Shards are snapshotted; destroy the executors NOW so their contexts
    // retire — buffered retired blocks reach the shards (the pending==0
    // check below needs them) and locally accumulated allocator counters
    // land in the domain before the `after` snapshot.
    executors.clear();

    // Merge: shards carry the engine threads' commit/abort counts; the
    // backend's true/false-conflict classification and the allocator's
    // domain-wide counters land in the instance block, so fold in this
    // run's delta of them.
    for (const stm::StmStats& shard : result.per_thread) {
        result.stats.merge(shard);
    }
    const stm::StmStats after = stm_->stats();
    result.stats.true_conflicts += after.true_conflicts - before.true_conflicts;
    result.stats.false_conflicts +=
        after.false_conflicts - before.false_conflicts;
    result.stats.clock_cas_failures +=
        after.clock_cas_failures - before.clock_cas_failures;
    result.stats.policy_switches +=
        after.policy_switches - before.policy_switches;
    result.stats.table_resizes += after.table_resizes - before.table_resizes;
    result.stats.alloc_cache_hits +=
        after.alloc_cache_hits - before.alloc_cache_hits;
    result.stats.alloc_cache_misses +=
        after.alloc_cache_misses - before.alloc_cache_misses;
    result.stats.reclaim_shard_flushes +=
        after.reclaim_shard_flushes - before.reclaim_shard_flushes;
    result.stats.domain_mutex_acquires +=
        after.domain_mutex_acquires - before.domain_mutex_acquires;

    lifetime_ops_ += result.ops;
    lifetime_stats_.merge(result.stats);

    // Rethrow only after the merge above: the surviving threads' shards
    // (commit/abort/attempt counts) must reach lifetime_stats_ even when a
    // worker threw — rethrowing first used to lose every histogram of the
    // run. The quiescence checks below stay off the error path; they would
    // report the interrupted run, not the bug that interrupted it.
    for (auto& err : errors) {
        if (err) std::rethrow_exception(err);
    }

    // Quiescent now (all threads joined, all executors destroyed): release
    // every retired block — nothing can still hold one — then check that
    // the allocation ledger balances and the ownership table is empty.
    stm_->reclaim_drain();
    const stm::ReclaimStats reclaim = stm_->reclaim_stats();
    if (reclaim.pending_blocks() != 0) {
        throw std::runtime_error(
            "reclamation not quiescent after join: " +
            std::to_string(reclaim.pending_blocks()) +
            " retired blocks still pending after a full drain");
    }
    workload_->verify(lifetime_ops_);
    if (const std::uint64_t held = stm_->occupied_metadata_entries()) {
        throw std::runtime_error(
            "ownership table not quiescent after join: " +
            std::to_string(held) + " entries still held (lost release)");
    }
    result.state_hash = workload_->state_hash();
    return result;
}

}  // namespace tmb::exec
