// spec2000.hpp — SPEC2000int-like synthetic transaction traces.
//
// SUBSTITUTION (documented in DESIGN.md §2): the paper replays SPEC2000
// integer benchmark traces (64-bit Alpha, reference inputs, ≥20 traces from
// ≥2 checkpoints each) through a cache simulator to find the average
// transactional footprint at first overflow (Fig. 3). We do not have SPEC
// binaries or checkpoints, so each benchmark becomes a *locality profile*: a
// parametric model of how the benchmark discovers new cache blocks
// (sequential runs, strides, pointer chasing across memory regions), how
// often it rewrites old ones, and how many instructions it executes per
// memory access. The cache-overflow statistic of Fig. 3 is a function of
// exactly these properties plus cache geometry, so the profile preserves the
// behaviour being measured.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace tmb::trace {

/// Locality profile for one SPEC2000int-like benchmark.
struct Spec2000Profile {
    std::string_view name;
    /// Probability that an access touches a block not yet in the footprint
    /// (controls how many instructions pass before the cache overflows).
    double p_new_block = 0.025;
    /// When discovering a new block: probability the discovery continues the
    /// current sequential/strided run.
    double run_continue = 0.5;
    std::uint64_t max_run = 32;
    /// Stride menu for new runs, in blocks (1 = consecutive lines).
    std::vector<std::uint64_t> strides = {1};
    /// Probability a new run starts at a uniformly random spot in a region
    /// (pointer chasing) rather than near the previous run.
    double scatter_fraction = 0.3;
    /// Memory regions (sizes in blocks): models stack/global/heap areas whose
    /// base addresses land in different cache sets.
    std::vector<std::uint64_t> region_blocks = {1u << 16};
    /// Fraction of *blocks* that are written at least once (the paper finds
    /// roughly 1/3 of the overflow footprint is written).
    double write_block_fraction = 1.0 / 3.0;
    /// Probability an access to an already-written block is itself a write.
    double rewrite_fraction = 0.5;
    /// Mean dynamic instructions between memory accesses.
    double instr_per_access = 3.0;
};

/// The 12 SPEC2000int benchmarks of Fig. 3 with qualitatively distinct
/// locality profiles (streaming compressors, pointer-chasers, code-heavy...).
[[nodiscard]] const std::array<Spec2000Profile, 12>& spec2000_profiles();

/// Look up a profile by name; throws std::out_of_range for unknown names.
[[nodiscard]] const Spec2000Profile& spec2000_profile(std::string_view name);

/// Incremental emitter for one profile's stream: yields exactly the
/// sequence of generate_spec2000_stream, chunk by chunk. State is
/// O(footprint) — the block-level write decisions require remembering which
/// blocks were classified as written — but never O(trace length).
class Spec2000Emitter {
public:
    /// `profile.name` must outlive the emitter (built-in profiles are
    /// static, so this only matters for caller-owned custom profiles).
    Spec2000Emitter(const Spec2000Profile& profile, std::uint64_t seed);

    /// Fills `out` completely (the stream is unbounded); returns out.size().
    std::size_t emit(std::span<Access> out);

private:
    Spec2000Profile profile_;
    util::Xoshiro256 rng_;
    std::vector<std::uint64_t> region_base_;
    /// Footprint tracking: block -> whether the block counts as written.
    std::unordered_map<std::uint64_t, bool> footprint_;
    std::vector<std::uint64_t> touched_;  ///< insertion order, for reuse draws
    std::size_t region_ = 0;
    std::uint64_t run_block_;
    std::uint64_t run_stride_ = 1;
    std::uint64_t run_remaining_ = 0;

    [[nodiscard]] std::uint64_t new_block();
};

/// Generates a transaction-like access stream from a profile. The stream has
/// `accesses` entries; block-level write decisions follow
/// `write_block_fraction`/`rewrite_fraction` so the read:write footprint mix
/// matches the profile.
[[nodiscard]] Stream generate_spec2000_stream(const Spec2000Profile& profile,
                                              std::size_t accesses,
                                              std::uint64_t seed);

}  // namespace tmb::trace
