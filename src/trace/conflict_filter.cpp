#include "trace/conflict_filter.hpp"

#include <algorithm>
#include <unordered_map>

namespace tmb::trace {

namespace {

struct BlockUse {
    std::uint32_t reader_mask = 0;  ///< bit per stream (capped at 32 streams)
    std::uint32_t writer_mask = 0;

    [[nodiscard]] bool multi_stream() const noexcept {
        const std::uint32_t any = reader_mask | writer_mask;
        return (any & (any - 1)) != 0;  // more than one bit set
    }
    [[nodiscard]] bool true_conflict() const noexcept {
        if (writer_mask == 0) return false;            // read-only sharing is fine
        if (!multi_stream()) return false;             // single stream only
        // A writer plus any other stream (reader or writer) conflicts.
        const std::uint32_t others = (reader_mask | writer_mask) & ~writer_mask;
        const bool multiple_writers = (writer_mask & (writer_mask - 1)) != 0;
        return multiple_writers || others != 0;
    }
};

std::unordered_map<std::uint64_t, BlockUse> build_use_map(
    const MultiThreadTrace& trace) {
    std::unordered_map<std::uint64_t, BlockUse> use;
    use.reserve(trace.total_accesses());
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        const auto bit = std::uint32_t{1} << (t & 31);
        for (const auto& a : trace.streams[t]) {
            auto& u = use[a.block];
            if (a.is_write) {
                u.writer_mask |= bit;
            } else {
                u.reader_mask |= bit;
            }
        }
    }
    return use;
}

}  // namespace

ConflictFilterStats remove_true_conflicts(MultiThreadTrace& trace) {
    ConflictFilterStats stats;
    stats.accesses_before = trace.total_accesses();

    const auto use = build_use_map(trace);
    for (const auto& [block, u] : use) {
        (void)block;
        if (u.true_conflict()) ++stats.blocks_removed;
    }

    for (auto& stream : trace.streams) {
        std::erase_if(stream, [&](const Access& a) {
            const auto it = use.find(a.block);
            return it != use.end() && it->second.true_conflict();
        });
    }
    stats.accesses_after = trace.total_accesses();
    return stats;
}

bool has_true_conflicts(const MultiThreadTrace& trace) {
    const auto use = build_use_map(trace);
    return std::any_of(use.begin(), use.end(), [](const auto& kv) {
        return kv.second.true_conflict();
    });
}

}  // namespace tmb::trace
