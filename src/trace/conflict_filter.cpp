#include "trace/conflict_filter.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "trace/source.hpp"

namespace tmb::trace {

namespace {

struct BlockUse {
    std::uint64_t reader_mask = 0;  ///< bit per stream (one per stream, <= 64)
    std::uint64_t writer_mask = 0;

    [[nodiscard]] bool multi_stream() const noexcept {
        const std::uint64_t any = reader_mask | writer_mask;
        return (any & (any - 1)) != 0;  // more than one bit set
    }
    [[nodiscard]] bool true_conflict() const noexcept {
        if (writer_mask == 0) return false;            // read-only sharing is fine
        if (!multi_stream()) return false;             // single stream only
        // A writer plus any other stream (reader or writer) conflicts.
        const std::uint64_t others = (reader_mask | writer_mask) & ~writer_mask;
        const bool multiple_writers = (writer_mask & (writer_mask - 1)) != 0;
        return multiple_writers || others != 0;
    }
};

/// The per-block masks are exact only with one bit per stream; sharing bits
/// (the old `t & 31` wrap) would silently miss cross-stream conflicts, so
/// larger traces are rejected loudly instead.
void check_stream_count(std::size_t streams) {
    if (streams > 64) {
        throw std::invalid_argument(
            "conflict filter supports at most 64 streams, got " +
            std::to_string(streams));
    }
}

std::unordered_map<std::uint64_t, BlockUse> build_use_map(
    const MultiThreadTrace& trace) {
    check_stream_count(trace.streams.size());
    std::unordered_map<std::uint64_t, BlockUse> use;
    use.reserve(trace.total_accesses());
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        const auto bit = std::uint64_t{1} << t;
        for (const auto& a : trace.streams[t]) {
            auto& u = use[a.block];
            if (a.is_write) {
                u.writer_mask |= bit;
            } else {
                u.reader_mask |= bit;
            }
        }
    }
    return use;
}

/// Chunk-wise use-map construction; memory is O(distinct blocks). Also
/// counts total accesses (the pass sees every access anyway).
std::unordered_map<std::uint64_t, BlockUse> build_use_map(
    TraceSource& source, std::size_t* total_accesses) {
    check_stream_count(source.stream_count());
    std::unordered_map<std::uint64_t, BlockUse> use;
    std::vector<Access> chunk(kDefaultChunk);
    std::size_t total = 0;
    for (std::size_t t = 0; t < source.stream_count(); ++t) {
        const auto bit = std::uint64_t{1} << t;
        const auto reader = source.stream(t);
        std::size_t n;
        while ((n = reader->next(chunk)) > 0) {
            total += n;
            for (std::size_t i = 0; i < n; ++i) {
                auto& u = use[chunk[i].block];
                if (chunk[i].is_write) {
                    u.writer_mask |= bit;
                } else {
                    u.reader_mask |= bit;
                }
            }
        }
    }
    if (total_accesses) *total_accesses = total;
    return use;
}

}  // namespace

ConflictFilterStats remove_true_conflicts(MultiThreadTrace& trace) {
    ConflictFilterStats stats;
    stats.accesses_before = trace.total_accesses();

    const auto use = build_use_map(trace);
    for (const auto& [block, u] : use) {
        (void)block;
        if (u.true_conflict()) ++stats.blocks_removed;
    }

    for (auto& stream : trace.streams) {
        std::erase_if(stream, [&](const Access& a) {
            const auto it = use.find(a.block);
            return it != use.end() && it->second.true_conflict();
        });
    }
    stats.accesses_after = trace.total_accesses();
    return stats;
}

bool has_true_conflicts(const MultiThreadTrace& trace) {
    const auto use = build_use_map(trace);
    return std::any_of(use.begin(), use.end(), [](const auto& kv) {
        return kv.second.true_conflict();
    });
}

ConflictFilterStats remove_true_conflicts(TraceSource& source,
                                          const FilterSink& sink) {
    ConflictFilterStats stats;
    const auto use = build_use_map(source, &stats.accesses_before);
    for (const auto& [block, u] : use) {
        (void)block;
        if (u.true_conflict()) ++stats.blocks_removed;
    }

    // Pass 2: re-open every stream, compact each chunk in place, forward.
    std::vector<Access> chunk(kDefaultChunk);
    for (std::size_t t = 0; t < source.stream_count(); ++t) {
        const auto reader = source.stream(t);
        std::size_t n;
        while ((n = reader->next(chunk)) > 0) {
            std::size_t kept = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const auto it = use.find(chunk[i].block);
                if (it != use.end() && it->second.true_conflict()) continue;
                chunk[kept++] = chunk[i];
            }
            stats.accesses_after += kept;
            if (kept > 0) sink(t, std::span(chunk).first(kept));
        }
    }
    return stats;
}

bool has_true_conflicts(TraceSource& source) {
    const auto use = build_use_map(source, nullptr);
    return std::any_of(use.begin(), use.end(), [](const auto& kv) {
        return kv.second.true_conflict();
    });
}

struct TrueConflictScanner::Impl {
    std::unordered_map<std::uint64_t, BlockUse> use;
};

TrueConflictScanner::TrueConflictScanner() : impl_(std::make_unique<Impl>()) {}
TrueConflictScanner::~TrueConflictScanner() = default;

void TrueConflictScanner::add(std::size_t stream,
                              std::span<const Access> accesses) {
    check_stream_count(stream + 1);
    const auto bit = std::uint64_t{1} << stream;
    for (const Access& a : accesses) {
        auto& u = impl_->use[a.block];
        if (a.is_write) {
            u.writer_mask |= bit;
        } else {
            u.reader_mask |= bit;
        }
    }
}

bool TrueConflictScanner::has_true_conflicts() const {
    return std::any_of(impl_->use.begin(), impl_->use.end(),
                       [](const auto& kv) { return kv.second.true_conflict(); });
}

}  // namespace tmb::trace

