// source.hpp — pull-based streaming access to multithreaded traces.
//
// The paper's experiments are trace-driven, and the north star is scale:
// fully materializing every stream as a std::vector<Access> caps trace size
// by RAM and makes text I/O dominate tool runtime. A TraceSource instead
// exposes a trace as independently pullable per-stream cursors that fill
// caller-provided chunks, so every consumer — the alias experiment, the
// conflict filter, the analyzer, the replay workload — runs in O(chunk)
// memory regardless of trace length. Sources are constructed *by name*
// through the config registry, exactly like tables and backends:
//
//   source=jbb            SPECJBB-like synthetic generator (synthetic.hpp)
//   source=zipf           Zipfian-popularity generator (zipf.hpp)
//   source=spec:<profile> SPEC2000int-like profile generator (spec2000.hpp)
//   source=file:<path>    trace file, text or binary (auto-detected)
//
// MultiThreadTrace remains as the materialize-for-small-inputs adapter:
// wrap one with MemoryTraceSource, or drain a source with materialize().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "config/registry.hpp"
#include "trace/trace.hpp"

namespace tmb::trace {

/// Default chunk size (in accesses) consumers pull with; big enough to
/// amortize virtual dispatch and I/O, small enough to stay cache-resident.
inline constexpr std::size_t kDefaultChunk = 4096;

/// Pull cursor over one stream. Single-threaded; created positioned at the
/// start of the stream.
class StreamSource {
public:
    virtual ~StreamSource() = default;

    /// Copies the next accesses of the stream into `out` (up to out.size()
    /// of them) and returns how many were delivered; 0 means end of stream.
    [[nodiscard]] virtual std::size_t next(std::span<Access> out) = 0;

    /// Skips up to `n` accesses; returns how many were skipped (< n only at
    /// end of stream). The default drains chunks; in-memory sources
    /// override with O(1) repositioning.
    virtual std::uint64_t skip(std::uint64_t n);
};

/// A multithreaded trace as independently pullable streams. stream(i)
/// always opens a *fresh* cursor at the start of stream i, so multi-pass
/// consumers just reopen, and cursors for different streams may be consumed
/// from different threads concurrently (each cursor itself is
/// single-threaded; concurrent stream() calls must be externally
/// serialized).
class TraceSource {
public:
    virtual ~TraceSource() = default;

    [[nodiscard]] virtual std::size_t stream_count() const = 0;

    /// Opens a fresh cursor at the start of stream `index`.
    /// Throws std::out_of_range for index >= stream_count().
    [[nodiscard]] virtual std::unique_ptr<StreamSource> stream(
        std::size_t index) = 0;
};

/// In-memory source over a MultiThreadTrace — the adapter that keeps the
/// materialized representation usable wherever a source is expected.
class MemoryTraceSource final : public TraceSource {
public:
    /// Non-owning view; `trace` must outlive the source and its cursors.
    explicit MemoryTraceSource(const MultiThreadTrace& trace);
    /// Owning variant.
    explicit MemoryTraceSource(MultiThreadTrace&& trace);

    [[nodiscard]] std::size_t stream_count() const override;
    [[nodiscard]] std::unique_ptr<StreamSource> stream(
        std::size_t index) override;

private:
    MultiThreadTrace owned_;
    const MultiThreadTrace* trace_;
};

/// Drains every stream of `source` into memory — the small-input adapter
/// for consumers that genuinely need random access.
[[nodiscard]] MultiThreadTrace materialize(TraceSource& source);

/// The process-wide trace-source registry. Factories receive the Config
/// plus the `source=` value's suffix after ':' (empty when absent), so
/// compound keys like `spec:gcc` and `file:/tmp/a.trace` resolve without
/// per-argument registrations.
using TraceSourceRegistry = config::Registry<TraceSource, std::string_view>;

/// Registered source names, in registration order.
[[nodiscard]] std::vector<std::string> trace_source_names();

/// Creates a source from a Config. Keys:
///   source    jbb | zipf | spec:<profile> | file:<path> (default "jbb")
///   threads   stream count for the generators (default 4)
///   accesses  per-stream length for the generators (default 1M)
///   seed      generator seed (default 1)
///   skew      zipf skew s (default 0.99)
///   profile   spec profile when not given as `spec:<name>` (default "gcc")
[[nodiscard]] std::unique_ptr<TraceSource> make_trace_source(
    const config::Config& cfg);

/// Opens a trace file as a streaming source, auto-detecting the container
/// format by magic bytes (binary_io.hpp) vs text. Each cursor owns its own
/// file handle, so streams can be consumed concurrently.
[[nodiscard]] std::unique_ptr<TraceSource> open_trace_file(
    const std::string& path);

/// Trace container formats.
enum class TraceFormat { kText, kBinary };

/// Picks the on-disk format for `path`: binary for .tbin/.bin extensions,
/// text otherwise.
[[nodiscard]] TraceFormat format_for_path(const std::string& path);

/// Streams `source` into `path` chunk-wise (O(chunk) memory) in `format`.
void save_trace_file(const std::string& path, TraceSource& source,
                     TraceFormat format);

/// Loads a whole trace file of either format — small-input convenience on
/// top of open_trace_file + materialize.
[[nodiscard]] MultiThreadTrace load_trace_file(const std::string& path);

}  // namespace tmb::trace
