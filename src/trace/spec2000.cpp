#include "trace/spec2000.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tmb::trace {

namespace {

/// Profiles are qualitative: streaming compressors discover long sequential
/// runs (filling cache sets evenly → large footprint at overflow), pointer
/// chasers scatter discoveries uniformly (birthday-style set collisions →
/// earlier overflow), code/table-heavy benchmarks mix strides. p_new_block
/// sets how many instructions pass per new block, reproducing Fig. 3(b)'s
/// instruction-count spread.
std::array<Spec2000Profile, 12> make_profiles() {
    std::array<Spec2000Profile, 12> p{};

    // bzip2: streaming compressor — long sequential runs over big buffers.
    p[0] = {.name = "bzip2", .p_new_block = 0.030, .run_continue = 0.85,
            .max_run = 64, .strides = {1, 1, 1, 2}, .scatter_fraction = 0.10,
            .region_blocks = {1u << 17, 1u << 15}, .write_block_fraction = 0.40,
            .rewrite_fraction = 0.5, .instr_per_access = 3.0};
    // crafty: chess — hot hash tables, scattered probes, small hot set.
    p[1] = {.name = "crafty", .p_new_block = 0.012, .run_continue = 0.35,
            .max_run = 8, .strides = {1, 2, 4}, .scatter_fraction = 0.55,
            .region_blocks = {1u << 15, 1u << 12}, .write_block_fraction = 0.25,
            .rewrite_fraction = 0.4, .instr_per_access = 3.5};
    // eon: C++ ray tracer — small objects, moderate locality.
    p[2] = {.name = "eon", .p_new_block = 0.010, .run_continue = 0.55,
            .max_run = 8, .strides = {1, 1, 2}, .scatter_fraction = 0.30,
            .region_blocks = {1u << 13, 1u << 12}, .write_block_fraction = 0.35,
            .rewrite_fraction = 0.5, .instr_per_access = 4.0};
    // gap: group theory — large workspace, mixed strides.
    p[3] = {.name = "gap", .p_new_block = 0.028, .run_continue = 0.60,
            .max_run = 24, .strides = {1, 2, 8}, .scatter_fraction = 0.30,
            .region_blocks = {1u << 16, 1u << 14}, .write_block_fraction = 0.35,
            .rewrite_fraction = 0.5, .instr_per_access = 3.0};
    // gcc: compiler — many regions, pointer-heavy, big footprint fast.
    p[4] = {.name = "gcc", .p_new_block = 0.045, .run_continue = 0.45,
            .max_run = 16, .strides = {1, 1, 2, 4}, .scatter_fraction = 0.45,
            .region_blocks = {1u << 16, 1u << 14, 1u << 13},
            .write_block_fraction = 0.40, .rewrite_fraction = 0.5,
            .instr_per_access = 2.8};
    // gzip: streaming compressor — sequential with a hot dictionary.
    p[5] = {.name = "gzip", .p_new_block = 0.026, .run_continue = 0.80,
            .max_run = 48, .strides = {1, 1, 1, 2}, .scatter_fraction = 0.15,
            .region_blocks = {1u << 16, 1u << 12}, .write_block_fraction = 0.40,
            .rewrite_fraction = 0.5, .instr_per_access = 3.0};
    // mcf: network simplex — dominant pointer chasing over a huge graph.
    p[6] = {.name = "mcf", .p_new_block = 0.060, .run_continue = 0.20,
            .max_run = 4, .strides = {1, 3, 5}, .scatter_fraction = 0.80,
            .region_blocks = {1u << 18}, .write_block_fraction = 0.30,
            .rewrite_fraction = 0.4, .instr_per_access = 2.2};
    // parser: NL parser — small-object pointer chasing.
    p[7] = {.name = "parser", .p_new_block = 0.020, .run_continue = 0.35,
            .max_run = 6, .strides = {1, 2}, .scatter_fraction = 0.60,
            .region_blocks = {1u << 15, 1u << 12}, .write_block_fraction = 0.35,
            .rewrite_fraction = 0.5, .instr_per_access = 3.2};
    // perlbmk: interpreter — bytecode tables + heap churn.
    p[8] = {.name = "perlbmk", .p_new_block = 0.022, .run_continue = 0.50,
            .max_run = 12, .strides = {1, 2, 4}, .scatter_fraction = 0.40,
            .region_blocks = {1u << 15, 1u << 13}, .write_block_fraction = 0.40,
            .rewrite_fraction = 0.5, .instr_per_access = 3.0};
    // twolf: place & route — scattered small structures.
    p[9] = {.name = "twolf", .p_new_block = 0.015, .run_continue = 0.30,
            .max_run = 6, .strides = {1, 2, 3}, .scatter_fraction = 0.65,
            .region_blocks = {1u << 14, 1u << 12}, .write_block_fraction = 0.30,
            .rewrite_fraction = 0.4, .instr_per_access = 3.4};
    // vortex: OO database — object runs plus index probes.
    p[10] = {.name = "vortex", .p_new_block = 0.030, .run_continue = 0.60,
             .max_run = 16, .strides = {1, 1, 4}, .scatter_fraction = 0.35,
             .region_blocks = {1u << 16, 1u << 13}, .write_block_fraction = 0.45,
             .rewrite_fraction = 0.55, .instr_per_access = 2.8};
    // vpr: FPGA place & route — grid walks plus random moves.
    p[11] = {.name = "vpr", .p_new_block = 0.014, .run_continue = 0.45,
             .max_run = 10, .strides = {1, 2, 8}, .scatter_fraction = 0.50,
             .region_blocks = {1u << 14, 1u << 12}, .write_block_fraction = 0.30,
             .rewrite_fraction = 0.45, .instr_per_access = 3.3};
    return p;
}

}  // namespace

const std::array<Spec2000Profile, 12>& spec2000_profiles() {
    static const std::array<Spec2000Profile, 12> profiles = make_profiles();
    return profiles;
}

const Spec2000Profile& spec2000_profile(std::string_view name) {
    for (const auto& p : spec2000_profiles()) {
        if (p.name == name) return p;
    }
    throw std::out_of_range("unknown SPEC2000 profile: " + std::string(name));
}

Spec2000Emitter::Spec2000Emitter(const Spec2000Profile& profile,
                                 std::uint64_t seed)
    : profile_(profile), rng_(util::mix64(seed)) {
    // Region base addresses are spread far apart so different regions start
    // at unrelated cache sets (as real stack/heap/global segments do).
    std::uint64_t next_base = 1u << 20;
    for (std::uint64_t sz : profile_.region_blocks) {
        region_base_.push_back(next_base);
        next_base += sz + (1u << 18);
    }
    run_block_ = region_base_[0];
}

std::uint64_t Spec2000Emitter::new_block() {
    if (run_remaining_ > 0) {
        --run_remaining_;
        run_block_ += run_stride_;
    } else {
        if (rng_.bernoulli(profile_.scatter_fraction) || touched_.empty()) {
            // Pointer-chase: jump to a random spot in a random region.
            region_ = rng_.below(region_base_.size());
            run_block_ = region_base_[region_] +
                         rng_.below(profile_.region_blocks[region_]);
        } else {
            // Start a nearby run (spatial locality around recent work).
            run_block_ += 1 + rng_.below(8);
        }
        run_stride_ = profile_.strides[rng_.below(profile_.strides.size())];
        run_remaining_ =
            rng_.run_length(1.0 - profile_.run_continue, profile_.max_run) - 1;
    }
    return run_block_;
}

std::size_t Spec2000Emitter::emit(std::span<Access> out) {
    for (Access& slot : out) {
        std::uint64_t block;
        const bool discover =
            touched_.empty() || rng_.bernoulli(profile_.p_new_block);
        if (discover) {
            block = new_block();
            if (!footprint_.contains(block)) {
                const bool written = rng_.bernoulli(profile_.write_block_fraction);
                footprint_.emplace(block, written);
                touched_.push_back(block);
            }
        } else {
            // Temporal reuse, biased toward recent blocks: draw from the last
            // K touched blocks where K grows with footprint.
            const std::size_t window =
                std::min<std::size_t>(touched_.size(), 128);
            block = touched_[touched_.size() - 1 - rng_.below(window)];
        }

        const bool block_written = footprint_[block];
        const bool is_write =
            block_written && rng_.bernoulli(profile_.rewrite_fraction);
        // First access to a "written" block is the write that marks it.
        const bool first_touch_write = discover && block_written;

        const auto mean_i = profile_.instr_per_access;
        const auto instr_delta = static_cast<std::uint32_t>(
            1 + rng_.below(static_cast<std::uint64_t>(2.0 * mean_i)));
        slot = Access{block, is_write || first_touch_write, instr_delta};
    }
    return out.size();
}

Stream generate_spec2000_stream(const Spec2000Profile& profile,
                                std::size_t accesses, std::uint64_t seed) {
    Stream out(accesses);
    Spec2000Emitter(profile, seed).emit(out);
    return out;
}

}  // namespace tmb::trace
