// trace.hpp — the memory-access-trace data model.
//
// The paper's experiments consume per-thread streams of cache-block-granular
// memory accesses (§2.2 uses SPECJBB2005 traces; §2.3 uses SPEC2000int
// traces). We model an access as a block address plus a read/write flag and
// a dynamic-instruction-count delta (the number of instructions executed
// since the previous access — needed to reproduce Fig. 3(b)'s instruction
// counts at overflow).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tmb::trace {

/// Block-granular memory access. `block` is the byte address already shifted
/// right by log2(block size); the experiments never need sub-block offsets.
struct Access {
    std::uint64_t block = 0;
    bool is_write = false;
    /// Dynamic instructions executed since the previous access (>= 1).
    std::uint32_t instr_delta = 1;

    friend bool operator==(const Access&, const Access&) = default;
};

/// One thread's access stream.
using Stream = std::vector<Access>;

/// A multithreaded trace, fully materialized: one stream per thread.
///
/// This is the small-input representation — tests and the figure benches
/// use it for random access. Anything that scales with trace length should
/// consume streams through the pull-based trace::TraceSource layer
/// (source.hpp) instead, which runs in O(chunk) memory;
/// trace::MemoryTraceSource adapts a materialized trace to that interface.
struct MultiThreadTrace {
    std::vector<Stream> streams;

    [[nodiscard]] std::size_t thread_count() const noexcept { return streams.size(); }
    [[nodiscard]] std::size_t total_accesses() const noexcept {
        std::size_t n = 0;
        for (const auto& s : streams) n += s.size();
        return n;
    }
};

/// Count of distinct blocks in a stream (footprint).
[[nodiscard]] std::size_t unique_blocks(std::span<const Access> stream);

/// Counts of write accesses in a stream.
[[nodiscard]] std::size_t write_count(std::span<const Access> stream);

/// Total dynamic instructions covered by a stream prefix of `n` accesses.
[[nodiscard]] std::uint64_t instruction_count(std::span<const Access> stream,
                                              std::size_t n);

}  // namespace tmb::trace
