#include "trace/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace tmb::trace {

SpecJbbLikeGenerator::SpecJbbLikeGenerator(SpecJbbLikeParams params,
                                           std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {
    if (params_.threads == 0) throw std::invalid_argument("threads must be > 0");
    if (params_.arena_blocks == 0) throw std::invalid_argument("arena_blocks must be > 0");
    if (params_.strides.empty()) throw std::invalid_argument("strides must be non-empty");
}

SpecJbbLikeGenerator::Emitter::Emitter(const SpecJbbLikeParams& params,
                                       std::uint64_t seed,
                                       std::uint32_t thread_id)
    // Per-thread independent RNG stream: mix the seed with the thread id so
    // streams are reproducible independently of generation order.
    : params_(params),
      rng_(util::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (thread_id + 1)))),
      // Arena layout: [shared pool][thread 0 arena][thread 1 arena]...
      arena_base_(params.shared_blocks +
                  static_cast<std::uint64_t>(thread_id) * params.arena_blocks) {
    recent_.reserve(params_.reuse_window);
    run_block_ = arena_base_ + rng_.below(params_.arena_blocks);
}

void SpecJbbLikeGenerator::Emitter::remember(std::uint64_t block) {
    if (params_.reuse_window == 0) return;
    if (recent_.size() < params_.reuse_window) {
        recent_.push_back(block);
    } else {
        recent_[recent_next_] = block;
        recent_next_ = (recent_next_ + 1) % recent_.size();
    }
}

std::size_t SpecJbbLikeGenerator::Emitter::emit(std::span<Access> out) {
    for (Access& slot : out) {
        std::uint64_t block;
        if (run_remaining_ > 0) {
            // Continue the current spatial run.
            run_block_ += run_stride_;
            --run_remaining_;
            block = arena_base_ + (run_block_ - arena_base_) % params_.arena_blocks;
            run_block_ = block;
        } else if (!recent_.empty() && rng_.bernoulli(params_.reuse_fraction)) {
            // Temporal reuse of a recently touched block.
            block = recent_[rng_.below(recent_.size())];
        } else if (rng_.bernoulli(params_.shared_fraction)) {
            // Shared-pool access (potential true conflict, filtered later).
            block = rng_.below(std::max<std::uint64_t>(params_.shared_blocks, 1));
        } else {
            // Start a fresh spatial run at a random arena location.
            run_block_ = arena_base_ + rng_.below(params_.arena_blocks);
            run_stride_ = params_.strides[rng_.below(params_.strides.size())];
            run_remaining_ =
                rng_.run_length(1.0 - params_.run_continue, params_.max_run) - 1;
            block = run_block_;
        }
        remember(block);

        const bool is_write = rng_.bernoulli(params_.write_fraction);
        const auto instr_delta = static_cast<std::uint32_t>(
            1 + rng_.below(2 * std::max<std::uint32_t>(params_.mean_instr_per_access, 1) - 1));
        slot = Access{block, is_write, instr_delta};
    }
    return out.size();
}

SpecJbbLikeGenerator::Emitter SpecJbbLikeGenerator::stream_emitter(
    std::uint32_t thread_id) const {
    return Emitter(params_, seed_, thread_id);
}

Stream SpecJbbLikeGenerator::generate_stream(std::uint32_t thread_id,
                                             std::size_t accesses) {
    Stream out(accesses);
    stream_emitter(thread_id).emit(out);
    return out;
}

MultiThreadTrace SpecJbbLikeGenerator::generate(std::size_t accesses_per_thread) {
    MultiThreadTrace trace;
    trace.streams.reserve(params_.threads);
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
        trace.streams.push_back(generate_stream(t, accesses_per_thread));
    }
    return trace;
}

std::size_t unique_blocks(std::span<const Access> stream) {
    std::vector<std::uint64_t> blocks;
    blocks.reserve(stream.size());
    for (const auto& a : stream) blocks.push_back(a.block);
    std::sort(blocks.begin(), blocks.end());
    return static_cast<std::size_t>(
        std::unique(blocks.begin(), blocks.end()) - blocks.begin());
}

std::size_t write_count(std::span<const Access> stream) {
    std::size_t n = 0;
    for (const auto& a : stream) n += a.is_write ? 1 : 0;
    return n;
}

std::uint64_t instruction_count(std::span<const Access> stream, std::size_t n) {
    std::uint64_t total = 0;
    const std::size_t limit = std::min(n, stream.size());
    for (std::size_t i = 0; i < limit; ++i) total += stream[i].instr_delta;
    return total;
}

}  // namespace tmb::trace
