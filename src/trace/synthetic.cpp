#include "trace/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace tmb::trace {

SpecJbbLikeGenerator::SpecJbbLikeGenerator(SpecJbbLikeParams params,
                                           std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {
    if (params_.threads == 0) throw std::invalid_argument("threads must be > 0");
    if (params_.arena_blocks == 0) throw std::invalid_argument("arena_blocks must be > 0");
    if (params_.strides.empty()) throw std::invalid_argument("strides must be non-empty");
}

Stream SpecJbbLikeGenerator::generate_stream(std::uint32_t thread_id,
                                             std::size_t accesses) {
    // Per-thread independent RNG stream: mix the seed with the thread id so
    // streams are reproducible independently of generation order.
    util::Xoshiro256 rng{util::mix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (thread_id + 1)))};

    // Arena layout: [shared pool][thread 0 arena][thread 1 arena]...
    const std::uint64_t arena_base =
        params_.shared_blocks + static_cast<std::uint64_t>(thread_id) * params_.arena_blocks;

    Stream out;
    out.reserve(accesses);

    // Recent-block ring buffer for temporal reuse.
    std::vector<std::uint64_t> recent;
    recent.reserve(params_.reuse_window);
    std::size_t recent_next = 0;
    auto remember = [&](std::uint64_t block) {
        if (params_.reuse_window == 0) return;
        if (recent.size() < params_.reuse_window) {
            recent.push_back(block);
        } else {
            recent[recent_next] = block;
            recent_next = (recent_next + 1) % recent.size();
        }
    };

    std::uint64_t run_block = arena_base + rng.below(params_.arena_blocks);
    std::uint64_t run_remaining = 0;
    std::uint64_t run_stride = 1;

    for (std::size_t i = 0; i < accesses; ++i) {
        std::uint64_t block;
        if (run_remaining > 0) {
            // Continue the current spatial run.
            run_block += run_stride;
            --run_remaining;
            block = arena_base + (run_block - arena_base) % params_.arena_blocks;
            run_block = block;
        } else if (!recent.empty() && rng.bernoulli(params_.reuse_fraction)) {
            // Temporal reuse of a recently touched block.
            block = recent[rng.below(recent.size())];
        } else if (rng.bernoulli(params_.shared_fraction)) {
            // Shared-pool access (potential true conflict, filtered later).
            block = rng.below(std::max<std::uint64_t>(params_.shared_blocks, 1));
        } else {
            // Start a fresh spatial run at a random arena location.
            run_block = arena_base + rng.below(params_.arena_blocks);
            run_stride = params_.strides[rng.below(params_.strides.size())];
            run_remaining =
                rng.run_length(1.0 - params_.run_continue, params_.max_run) - 1;
            block = run_block;
        }
        remember(block);

        const bool is_write = rng.bernoulli(params_.write_fraction);
        const auto instr_delta = static_cast<std::uint32_t>(
            1 + rng.below(2 * std::max<std::uint32_t>(params_.mean_instr_per_access, 1) - 1));
        out.push_back(Access{block, is_write, instr_delta});
    }
    return out;
}

MultiThreadTrace SpecJbbLikeGenerator::generate(std::size_t accesses_per_thread) {
    MultiThreadTrace trace;
    trace.streams.reserve(params_.threads);
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
        trace.streams.push_back(generate_stream(t, accesses_per_thread));
    }
    return trace;
}

std::size_t unique_blocks(std::span<const Access> stream) {
    std::vector<std::uint64_t> blocks;
    blocks.reserve(stream.size());
    for (const auto& a : stream) blocks.push_back(a.block);
    std::sort(blocks.begin(), blocks.end());
    return static_cast<std::size_t>(
        std::unique(blocks.begin(), blocks.end()) - blocks.begin());
}

std::size_t write_count(std::span<const Access> stream) {
    std::size_t n = 0;
    for (const auto& a : stream) n += a.is_write ? 1 : 0;
    return n;
}

std::uint64_t instruction_count(std::span<const Access> stream, std::size_t n) {
    std::uint64_t total = 0;
    const std::size_t limit = std::min(n, stream.size());
    for (std::size_t i = 0; i < limit; ++i) total += stream[i].instr_delta;
    return total;
}

}  // namespace tmb::trace
