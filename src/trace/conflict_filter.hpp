// conflict_filter.hpp — true-conflict removal.
//
// The paper's §2.2 experiment explicitly removes true conflicts from the
// concurrent address streams so that every remaining cross-stream collision
// in the ownership table is a *false* (alias-induced) conflict:
//
//   "As we consume these traces, we remove any true conflicts so we can
//    focus on the aliasing-induced conflicts found in real address streams."
//
// A true conflict exists when two different streams access the same block
// and at least one access is a write. We remove them by dropping, from every
// stream, all accesses to blocks that any *other* stream touches with a
// conflicting mode. Read-read sharing is not a conflict and is kept.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "trace/trace.hpp"

namespace tmb::trace {

class TraceSource;

/// Statistics describing what the filter removed.
struct ConflictFilterStats {
    std::size_t accesses_before = 0;
    std::size_t accesses_after = 0;
    std::size_t blocks_removed = 0;  ///< distinct truly-conflicting blocks

    [[nodiscard]] double removed_fraction() const noexcept {
        return accesses_before
                   ? 1.0 - static_cast<double>(accesses_after) /
                               static_cast<double>(accesses_before)
                   : 0.0;
    }
};

/// Removes all true conflicts between the trace's streams, in place.
/// After this call, no block is accessed by two different streams unless all
/// accesses to it (in all streams) are reads. The classification keeps one
/// bit per stream, so all filter entry points reject traces with more than
/// 64 streams (std::invalid_argument) rather than silently missing
/// conflicts.
ConflictFilterStats remove_true_conflicts(MultiThreadTrace& trace);

/// Returns true iff the trace contains no true conflicts (used as the
/// postcondition check in tests).
[[nodiscard]] bool has_true_conflicts(const MultiThreadTrace& trace);

/// Chunk-wise consumer of filtered output: receives each stream's surviving
/// accesses in order (streams emitted sequentially, chunks within a stream
/// in stream order).
using FilterSink =
    std::function<void(std::size_t stream, std::span<const Access> accesses)>;

/// Streaming two-pass filter: pass 1 scans `source` chunk-wise to find the
/// truly-conflicting blocks (memory: O(distinct blocks), never O(trace
/// length)); pass 2 re-opens every stream and forwards the surviving
/// accesses to `sink`. The source must support reopening streams (all
/// built-in sources do).
ConflictFilterStats remove_true_conflicts(TraceSource& source,
                                          const FilterSink& sink);

/// Streaming variant of the postcondition check.
[[nodiscard]] bool has_true_conflicts(TraceSource& source);

/// Incremental true-conflict detector: feed every stream's chunks (any
/// interleaving), then ask. Lets consumers that already drain a trace for
/// another reason (e.g. trace_tool analyze) answer the conflict question in
/// the same pass instead of re-reading the file. Memory: O(distinct
/// blocks). Same 64-stream bound as the filter.
class TrueConflictScanner {
public:
    TrueConflictScanner();
    ~TrueConflictScanner();

    TrueConflictScanner(const TrueConflictScanner&) = delete;
    TrueConflictScanner& operator=(const TrueConflictScanner&) = delete;

    /// Records one chunk of stream `stream` (must be < 64).
    void add(std::size_t stream, std::span<const Access> accesses);

    [[nodiscard]] bool has_true_conflicts() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace tmb::trace
