// conflict_filter.hpp — true-conflict removal.
//
// The paper's §2.2 experiment explicitly removes true conflicts from the
// concurrent address streams so that every remaining cross-stream collision
// in the ownership table is a *false* (alias-induced) conflict:
//
//   "As we consume these traces, we remove any true conflicts so we can
//    focus on the aliasing-induced conflicts found in real address streams."
//
// A true conflict exists when two different streams access the same block
// and at least one access is a write. We remove them by dropping, from every
// stream, all accesses to blocks that any *other* stream touches with a
// conflicting mode. Read-read sharing is not a conflict and is kept.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace tmb::trace {

/// Statistics describing what the filter removed.
struct ConflictFilterStats {
    std::size_t accesses_before = 0;
    std::size_t accesses_after = 0;
    std::size_t blocks_removed = 0;  ///< distinct truly-conflicting blocks

    [[nodiscard]] double removed_fraction() const noexcept {
        return accesses_before
                   ? 1.0 - static_cast<double>(accesses_after) /
                               static_cast<double>(accesses_before)
                   : 0.0;
    }
};

/// Removes all true conflicts between the trace's streams, in place.
/// After this call, no block is accessed by two different streams unless all
/// accesses to it (in all streams) are reads.
ConflictFilterStats remove_true_conflicts(MultiThreadTrace& trace);

/// Returns true iff the trace contains no true conflicts (used as the
/// postcondition check in tests).
[[nodiscard]] bool has_true_conflicts(const MultiThreadTrace& trace);

}  // namespace tmb::trace
