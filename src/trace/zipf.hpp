// zipf.hpp — Zipfian block popularity and a skewed-trace generator.
//
// Real applications touch a few blocks very often and many blocks rarely.
// The SPECJBB-like generator models spatial structure; this generator models
// *popularity skew*: block i is accessed with probability ∝ 1/i^s. Useful as
// a stress pattern for the ownership-table experiments (hot blocks pin hot
// table entries) and as a second, structurally different validation workload
// for the alias experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace tmb::trace {

/// Samples ranks in [0, n) with probability P(k) ∝ 1/(k+1)^s using a
/// precomputed inverse CDF (O(log n) per sample, exact).
class ZipfianSampler {
public:
    /// s = 0 → uniform; s ≈ 0.99 is the classic YCSB skew.
    ZipfianSampler(std::uint64_t n, double s);

    [[nodiscard]] std::uint64_t sample(util::Xoshiro256& rng) const;

    [[nodiscard]] std::uint64_t universe() const noexcept {
        return static_cast<std::uint64_t>(cdf_.size());
    }

    /// Probability mass of rank k (for tests).
    [[nodiscard]] double pmf(std::uint64_t k) const;

private:
    std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k)
};

/// Parameters for the skewed multithreaded trace generator.
struct ZipfTraceParams {
    std::uint32_t threads = 4;
    std::uint64_t blocks_per_thread = 1u << 16;  ///< disjoint per-thread universes
    double skew = 0.99;
    double write_fraction = 1.0 / 3.0;
    std::uint32_t mean_instr_per_access = 3;
};

/// Incremental single-stream emitter for the Zipf generator: one RNG plus a
/// shared immutable sampler, so any number of streams can be produced
/// chunk-wise in O(1) state each. Thread t's emitter yields exactly the
/// stream generate_zipf_trace would put in streams[t].
class ZipfStreamEmitter {
public:
    /// `sampler` must have been built with the same params; shared across
    /// emitters (it is immutable and thread-safe to sample concurrently).
    ZipfStreamEmitter(std::shared_ptr<const ZipfianSampler> sampler,
                      const ZipfTraceParams& params, std::uint64_t seed,
                      std::uint32_t thread_id);

    /// Fills `out` completely (the stream is unbounded); returns out.size().
    std::size_t emit(std::span<Access> out);

private:
    std::shared_ptr<const ZipfianSampler> sampler_;
    util::Xoshiro256 rng_;
    std::uint64_t base_;
    double write_fraction_;
    std::uint32_t mean_instr_;
};

/// Generates per-thread streams with Zipf-distributed block popularity over
/// disjoint per-thread block universes (no true conflicts by construction).
[[nodiscard]] MultiThreadTrace generate_zipf_trace(const ZipfTraceParams& params,
                                                   std::size_t accesses_per_thread,
                                                   std::uint64_t seed);

}  // namespace tmb::trace
