#include "trace/binary_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace tmb::trace {

namespace {

using u128 = unsigned __int128;

/// 19 bytes hold ceil(128/7) varint groups — anything longer is corrupt.
constexpr std::size_t kMaxVarintBytes = 19;
constexpr std::size_t kRingSize = 128;

[[noreturn]] void corrupt(const std::string& what) {
    throw std::runtime_error("binary trace: " + what);
}

std::uint64_t zigzag_encode(std::int64_t d) noexcept {
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
}

std::int64_t zigzag_decode(std::uint64_t z) noexcept {
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void put_varint(u128 v, std::string& out) {
    do {
        auto byte = static_cast<unsigned char>(v & 0x7f);
        v >>= 7;
        if (v) byte |= 0x80;
        out.push_back(static_cast<char>(byte));
    } while (v);
}

std::size_t varint_size(u128 v) noexcept {
    std::size_t n = 1;
    while (v >>= 7) ++n;
    return n;
}

/// Reads one varint from `is`, adding consumed bytes to `*consumed` when
/// non-null. Throws on EOF mid-varint or an oversized encoding.
u128 get_varint(std::istream& is, std::uint64_t* consumed, const char* what) {
    u128 value = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
        const int c = is.get();
        if (c == std::istream::traits_type::eof()) {
            corrupt(std::string("truncated ") + what);
        }
        if (consumed) ++*consumed;
        value |= static_cast<u128>(c & 0x7f) << shift;
        if (!(c & 0x80)) return value;
        shift += 7;
    }
    corrupt(std::string("oversized varint in ") + what);
}

/// Reads a varint that must fit 64 bits (headers and counts).
std::uint64_t get_varint_u64(std::istream& is, std::uint64_t* consumed,
                             const char* what) {
    const u128 v = get_varint(is, consumed, what);
    if (v > std::numeric_limits<std::uint64_t>::max()) {
        corrupt(std::string("out-of-range ") + what);
    }
    return static_cast<std::uint64_t>(v);
}

/// Per-stream codec state shared by encoder and decoder: the previous block
/// address, the previous block delta (for the stride-repeat token), and a
/// ring of recently seen addresses. Both sides update it identically per
/// record, so it is chunking-independent.
///
/// Invariant: after any commit, the ring's recency-0 entry equals `prev`
/// (immediate repeats are not pushed, and anything else pushed *is* the new
/// prev). A ring reference with recency 0 would therefore be redundant with
/// a zero delta, so the head's kind-1 index 0 is repurposed as "repeat the
/// previous delta" — which turns every strided-run continuation into one
/// byte.
struct Codec {
    std::uint64_t prev = 0;
    std::uint64_t prev_delta = 0;  ///< block - previous block (mod 2^64)
    std::array<std::uint64_t, kRingSize> ring{};
    std::uint32_t count = 0;
    std::uint32_t next = 0;

    [[nodiscard]] int find(std::uint64_t block) const noexcept {
        for (std::uint32_t r = 0; r < count; ++r) {
            if (ring[(next + kRingSize - 1 - r) & (kRingSize - 1)] == block) {
                return static_cast<int>(r);
            }
        }
        return -1;
    }
    [[nodiscard]] std::uint64_t at(std::uint32_t recency) const noexcept {
        return ring[(next + kRingSize - 1 - recency) & (kRingSize - 1)];
    }
    /// Advances the codec past one access. Immediate repeats are not
    /// pushed (they are already delta-0 coded and would flush the ring);
    /// the rule depends only on decoded state, so both sides stay in sync.
    void commit(std::uint64_t block) noexcept {
        prev_delta = block - prev;
        if (block != prev || count == 0) {
            ring[next] = block;
            next = (next + 1) & (kRingSize - 1);
            if (count < kRingSize) ++count;
        }
        prev = block;
    }
};

void encode_access(Codec& codec, const Access& a, std::string& out) {
    if (a.instr_delta == 0) {
        // The format stores instr_delta - 1; 0 would underflow into a
        // record every decoder rejects — fail at the write, not the read.
        corrupt("instr_delta must be >= 1");
    }
    const std::uint64_t delta = a.block - codec.prev;
    const std::uint64_t zz =
        zigzag_encode(static_cast<std::int64_t>(delta));
    const std::uint32_t instr3 = std::min<std::uint32_t>(a.instr_delta - 1, 7);
    const std::uint32_t low =
        (instr3 << 2) | (static_cast<std::uint32_t>(a.is_write) << 1);

    u128 head;
    if (delta == codec.prev_delta && codec.count > 0) {
        // Stride repeat: one byte for every continuation of a strided run.
        head = low | 1;
    } else {
        const int recency = codec.find(a.block);
        const bool use_ring =
            recency >= 1 &&  // recency 0 is the repeat token's slot
            varint_size((static_cast<u128>(recency) << 5) | low | 1) <
                varint_size((static_cast<u128>(zz) << 5) | low);
        head = use_ring ? ((static_cast<u128>(recency) << 5) | low | 1)
                        : ((static_cast<u128>(zz) << 5) | low);
    }
    put_varint(head, out);
    if (instr3 == 7) put_varint(a.instr_delta - 8, out);

    codec.commit(a.block);
}

Access decode_access(Codec& codec, std::istream& is, std::uint64_t* consumed) {
    const u128 head = get_varint(is, consumed, "access record");
    const bool kind1 = (head & 1) != 0;
    const bool is_write = (head & 2) != 0;
    const auto instr3 = static_cast<std::uint32_t>((head >> 2) & 7);
    const u128 payload = head >> 5;

    std::uint64_t block;
    if (kind1 && payload == 0) {
        if (codec.count == 0) corrupt("stride repeat before first access");
        block = codec.prev + codec.prev_delta;
    } else if (kind1) {
        if (payload >= codec.count) corrupt("ring reference out of range");
        block = codec.at(static_cast<std::uint32_t>(payload));
    } else {
        if (payload > std::numeric_limits<std::uint64_t>::max()) {
            corrupt("block delta out of range");
        }
        block = codec.prev +
                static_cast<std::uint64_t>(
                    zigzag_decode(static_cast<std::uint64_t>(payload)));
    }

    std::uint32_t instr_delta;
    if (instr3 < 7) {
        instr_delta = instr3 + 1;
    } else {
        const u128 extra = get_varint(is, consumed, "instr_delta");
        if (extra > std::numeric_limits<std::uint32_t>::max() - 8) {
            corrupt("instr_delta out of range");
        }
        instr_delta = static_cast<std::uint32_t>(extra) + 8;
    }

    codec.commit(block);
    return Access{block, is_write, instr_delta};
}

struct BlockHeader {
    std::uint64_t stream = 0;
    std::uint64_t records = 0;
    std::uint64_t payload_len = 0;
};

/// Reads the next block header; false at clean end of file (EOF exactly at
/// a block boundary).
bool read_block_header(std::istream& is, std::size_t threads,
                       BlockHeader& out) {
    if (is.peek() == std::istream::traits_type::eof()) return false;
    out.stream = get_varint_u64(is, nullptr, "block header");
    out.records = get_varint_u64(is, nullptr, "block header");
    out.payload_len = get_varint_u64(is, nullptr, "block header");
    if (out.stream >= threads) corrupt("stream id out of range");
    if (out.records == 0) corrupt("empty block");
    // A record costs at least one byte, at most 2 * kMaxVarintBytes.
    if (out.payload_len < out.records ||
        out.payload_len > out.records * 2 * kMaxVarintBytes) {
        corrupt("implausible block payload length");
    }
    return true;
}

void write_magic(std::ostream& os) {
    os.write(kBinaryTraceMagic.data(), kBinaryTraceMagic.size());
}

}  // namespace

struct BinaryTraceWriter::StreamCodec : Codec {};

BinaryTraceWriter::~BinaryTraceWriter() = default;

BinaryTraceWriter::BinaryTraceWriter(std::ostream& os,
                                     std::size_t thread_count)
    : os_(os), codecs_(thread_count) {
    if (thread_count == 0 || thread_count > 1024) {
        throw std::invalid_argument("binary trace: bad thread count");
    }
    write_magic(os_);
    std::string header;
    put_varint(thread_count, header);
    os_.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (!os_) throw std::runtime_error("binary trace: header write failed");
}

void BinaryTraceWriter::write_chunk(std::size_t stream,
                                    std::span<const Access> accesses) {
    if (accesses.empty()) return;
    if (stream >= codecs_.size()) {
        throw std::out_of_range("binary trace: stream id out of range");
    }
    payload_.clear();
    for (const Access& a : accesses) {
        encode_access(codecs_[stream], a, payload_);
    }
    std::string header;
    put_varint(stream, header);
    put_varint(accesses.size(), header);
    put_varint(payload_.size(), header);
    os_.write(header.data(), static_cast<std::streamsize>(header.size()));
    os_.write(payload_.data(), static_cast<std::streamsize>(payload_.size()));
    if (!os_) throw std::runtime_error("binary trace: block write failed");
}

void write_binary(std::ostream& os, const MultiThreadTrace& trace) {
    BinaryTraceWriter writer(os, trace.streams.size());
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        std::span<const Access> stream = trace.streams[t];
        for (std::size_t i = 0; i < stream.size(); i += kDefaultChunk) {
            writer.write_chunk(
                t, stream.subspan(i, std::min(kDefaultChunk,
                                              stream.size() - i)));
        }
    }
}

std::size_t read_binary_header(std::istream& is) {
    std::array<char, 8> magic{};
    is.read(magic.data(), magic.size());
    if (is.gcount() != static_cast<std::streamsize>(magic.size()) ||
        magic != kBinaryTraceMagic) {
        corrupt("bad magic (not a tmb binary trace)");
    }
    const std::uint64_t threads = get_varint_u64(is, nullptr, "thread count");
    if (threads == 0 || threads > 1024) corrupt("bad thread count");
    return static_cast<std::size_t>(threads);
}

MultiThreadTrace read_binary(std::istream& is) {
    const std::size_t threads = read_binary_header(is);
    MultiThreadTrace trace;
    trace.streams.resize(threads);
    std::vector<Codec> codecs(threads);

    BlockHeader block;
    while (read_block_header(is, threads, block)) {
        Stream& out = trace.streams[block.stream];
        Codec& codec = codecs[block.stream];
        std::uint64_t consumed = 0;
        for (std::uint64_t r = 0; r < block.records; ++r) {
            out.push_back(decode_access(codec, is, &consumed));
            if (consumed > block.payload_len) {
                corrupt("block payload overrun");
            }
        }
        if (consumed != block.payload_len) {
            corrupt("block payload length mismatch");
        }
    }
    return trace;
}

void save_binary_file(const std::string& path, const MultiThreadTrace& trace) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_binary(os, trace);
    if (!os) throw std::runtime_error("write failed: " + path);
}

MultiThreadTrace load_binary_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return read_binary(is);
}

bool is_binary_trace_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    std::array<char, 8> magic{};
    is.read(magic.data(), magic.size());
    return is.gcount() == static_cast<std::streamsize>(magic.size()) &&
           magic == kBinaryTraceMagic;
}

struct BinaryStreamReader::Impl {
    std::ifstream is;
    std::size_t target = 0;
    std::size_t threads = 0;
    Codec codec;
    std::uint64_t block_remaining = 0;   ///< records left in current block
    std::uint64_t payload_remaining = 0; ///< bytes left in current payload
    bool done = false;
};

BinaryStreamReader::BinaryStreamReader(std::string path, std::size_t stream)
    : impl_(std::make_unique<Impl>()) {
    impl_->is.open(path, std::ios::binary);
    if (!impl_->is) throw std::runtime_error("cannot open for reading: " + path);
    impl_->threads = read_binary_header(impl_->is);
    if (stream >= impl_->threads) {
        throw std::out_of_range("binary trace: stream index out of range");
    }
    impl_->target = stream;
}

BinaryStreamReader::~BinaryStreamReader() = default;

std::size_t BinaryStreamReader::next(std::span<Access> out) {
    Impl& im = *impl_;
    std::size_t filled = 0;
    while (filled < out.size() && !im.done) {
        if (im.block_remaining == 0) {
            BlockHeader block;
            if (!read_block_header(im.is, im.threads, block)) {
                im.done = true;
                break;
            }
            if (block.stream != im.target) {
                // Foreign stream: skip the payload wholesale. ignore()
                // (rather than seekg) detects truncation via gcount.
                im.is.ignore(static_cast<std::streamsize>(block.payload_len));
                if (im.is.gcount() !=
                    static_cast<std::streamsize>(block.payload_len)) {
                    corrupt("truncated block payload");
                }
                continue;
            }
            im.block_remaining = block.records;
            im.payload_remaining = block.payload_len;
            continue;
        }
        std::uint64_t consumed = 0;
        out[filled++] = decode_access(im.codec, im.is, &consumed);
        if (consumed > im.payload_remaining) corrupt("block payload overrun");
        im.payload_remaining -= consumed;
        --im.block_remaining;
        if (im.block_remaining == 0 && im.payload_remaining != 0) {
            corrupt("block payload length mismatch");
        }
    }
    return filled;
}

}  // namespace tmb::trace
