// binary_io.hpp — compact binary trace container with streaming reader and
// writer.
//
// The text format (trace_io.hpp) costs ~13 bytes per access and dominates
// tool runtime at scale; this container stores the same streams in roughly
// 2–3 bytes per access, writable and readable chunk-wise in O(chunk)
// memory. Layout (all multi-byte integers are LEB128 varints, little-endian
// groups of 7 bits, high bit = continue):
//
//   magic        8 bytes   "TMBTRC01" (version in the last two bytes)
//   threads      varint    stream count, in [1, 1024]
//   blocks ...   until EOF, each:
//     stream       varint  stream id in [0, threads)
//     records      varint  access count in this block (>= 1)
//     payload_len  varint  byte length of the payload that follows (lets
//                          per-stream readers skip foreign blocks in O(1))
//     payload      `records` packed accesses (see below)
//
// Access coding. Each stream carries persistent codec state — the previous
// block address, the previous delta, and a 128-entry ring of recently seen
// addresses — that survives across blocks, so any chunking of a stream
// yields the same per-record bytes. One access is a head varint h plus an
// optional tail:
//
//   h bit 0        kind: 0 = delta-coded, 1 = repeat/ring
//   h bit 1        is_write
//   h bits 2..4    min(instr_delta - 1, 7); the value 7 means a tail
//                  varint follows holding instr_delta - 8
//   h bits 5...    kind 0: zigzag(block - prev_block)   (two's complement)
//                  kind 1, index 0: repeat the previous delta (strided-run
//                                   continuation; a recency-0 ring hit
//                                   would be redundant with delta 0)
//                  kind 1, index k >= 1: ring entry at recency k
//
// Sequential and strided run continuations cost one byte; temporal reuse
// of any of the last 128 window addresses costs two; random jumps cost ~4.
//
// Every structural violation — bad magic, truncated block, oversized
// varint, stream id out of range, payload length mismatch — throws
// std::runtime_error; corrupt input never crashes or silently truncates.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace tmb::trace {

/// File magic ("TMBTRC" + 2-digit version).
inline constexpr std::array<char, 8> kBinaryTraceMagic = {'T', 'M', 'B', 'T',
                                                          'R', 'C', '0', '1'};

/// Streaming writer: construct over an output stream (writes the file
/// header), then append chunks per stream in any interleaving. Per-stream
/// codec state persists across chunks, so chunk boundaries do not affect
/// the encoded payload bytes.
class BinaryTraceWriter {
public:
    BinaryTraceWriter(std::ostream& os, std::size_t thread_count);
    ~BinaryTraceWriter();

    BinaryTraceWriter(const BinaryTraceWriter&) = delete;
    BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

    /// Appends one block holding `accesses` for stream `stream`. Empty
    /// chunks are a no-op. Throws std::runtime_error on I/O failure or a
    /// stream id out of range.
    void write_chunk(std::size_t stream, std::span<const Access> accesses);

private:
    struct StreamCodec;

    std::ostream& os_;
    std::vector<StreamCodec> codecs_;
    std::string payload_;  ///< reused per-block encode buffer
};

/// Whole-trace conveniences (materialized path).
void write_binary(std::ostream& os, const MultiThreadTrace& trace);
[[nodiscard]] MultiThreadTrace read_binary(std::istream& is);
void save_binary_file(const std::string& path, const MultiThreadTrace& trace);
[[nodiscard]] MultiThreadTrace load_binary_file(const std::string& path);

/// Reads and validates the magic + thread count; positions `is` at the
/// first block. Throws std::runtime_error on anything else.
[[nodiscard]] std::size_t read_binary_header(std::istream& is);

/// True when `path` starts with the binary magic (false for short files or
/// text traces). Throws std::runtime_error only if the file cannot be
/// opened.
[[nodiscard]] bool is_binary_trace_file(const std::string& path);

/// Pull cursor over one stream of a binary trace file: decodes its own
/// blocks, skips foreign blocks via payload_len. Owns its file handle, so
/// cursors for different streams are concurrency-safe with respect to each
/// other.
class BinaryStreamReader final : public StreamSource {
public:
    BinaryStreamReader(std::string path, std::size_t stream);
    ~BinaryStreamReader() override;

    [[nodiscard]] std::size_t next(std::span<Access> out) override;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace tmb::trace
