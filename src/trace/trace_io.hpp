// trace_io.hpp — (de)serialization of multithreaded traces (text format).
//
// Users with real address traces (the paper used SPECJBB2005 and SPEC2000)
// can run every experiment in this repository on them by converting to this
// simple text format:
//
//   # comment lines start with '#'
//   T <thread_count>
//   <thread_id> <R|W> <hex block address> [instr_delta]
//
// Lines appear in per-thread program order (interleaving between threads is
// irrelevant: the experiments consume streams per thread). The format is
// strict: `instr_delta` must honour the `>= 1` invariant documented in
// trace.hpp, and trailing tokens on a line are parse errors — both are
// reported with the offending line number instead of silently coerced.
//
// A compact binary container lives in binary_io.hpp; the streaming source
// layer (source.hpp) reads either format chunk-wise without materializing.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "trace/trace.hpp"

namespace tmb::trace {

/// Streaming scanner over the text format: parses the header, then yields
/// one (thread id, Access) record per body line. Shared by the whole-trace
/// reader below and the per-stream file source, so both enforce the same
/// strict grammar. Throws std::runtime_error with a line number on
/// malformed input.
class TextTraceScanner {
public:
    /// Reads up to and including the 'T <thread_count>' header.
    explicit TextTraceScanner(std::istream& is);

    [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

    /// Parses the next body record; returns false at end of input.
    bool next(std::size_t& tid, Access& out);

private:
    std::istream& is_;
    std::size_t threads_ = 0;
    std::size_t line_no_ = 0;
    std::string line_;

    [[noreturn]] void fail(const std::string& what) const;
};

/// Writes the 'T <thread_count>' header (plus the format comment).
void write_text_header(std::ostream& os, std::size_t thread_count);

/// Writes one chunk of stream `tid` as body lines.
void write_text_chunk(std::ostream& os, std::size_t tid,
                      std::span<const Access> accesses);

/// Writes `trace` in the text format above.
void write_text(std::ostream& os, const MultiThreadTrace& trace);

/// Parses the text format. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] MultiThreadTrace read_text(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_text_file(const std::string& path, const MultiThreadTrace& trace);
[[nodiscard]] MultiThreadTrace load_text_file(const std::string& path);

}  // namespace tmb::trace
