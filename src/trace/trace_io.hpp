// trace_io.hpp — (de)serialization of multithreaded traces.
//
// Users with real address traces (the paper used SPECJBB2005 and SPEC2000)
// can run every experiment in this repository on them by converting to this
// simple text format:
//
//   # comment lines start with '#'
//   T <thread_count>
//   <thread_id> <R|W> <hex block address> [instr_delta]
//
// Lines appear in per-thread program order (interleaving between threads is
// irrelevant: the experiments consume streams per thread).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace tmb::trace {

/// Writes `trace` in the text format above.
void write_text(std::ostream& os, const MultiThreadTrace& trace);

/// Parses the text format. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] MultiThreadTrace read_text(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_text_file(const std::string& path, const MultiThreadTrace& trace);
[[nodiscard]] MultiThreadTrace load_text_file(const std::string& path);

}  // namespace tmb::trace
