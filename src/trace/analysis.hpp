// analysis.hpp — locality analytics for access traces.
//
// Quantifies the properties the paper's experiments are sensitive to:
// sequential-run structure (the §4 discussion of consecutive addresses
// mapping to consecutive table entries), temporal reuse, write mix, and
// footprint growth. Used to validate the synthetic generators against the
// qualitative properties of the workloads they substitute for, and useful
// standalone for users profiling their own traces before running the
// experiments on them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace tmb::trace {

/// Summary statistics of one access stream.
struct StreamProfile {
    std::size_t accesses = 0;
    std::size_t unique_blocks = 0;
    double write_fraction = 0.0;      ///< fraction of accesses that write
    double written_block_fraction = 0.0;  ///< fraction of blocks ever written
    /// Effective α: reads per write over the whole stream.
    double alpha = 0.0;

    /// Sequential-run structure: lengths of maximal runs of +1-block
    /// successors (run length 1 = isolated access).
    util::Histogram run_lengths{128};
    double mean_run_length = 0.0;
    /// Fraction of accesses whose block is previous block + 1.
    double sequential_fraction = 0.0;

    /// Temporal reuse: fraction of accesses to an already-touched block.
    double reuse_fraction = 0.0;
    /// Reuse distance in *accesses since previous touch of the same block*
    /// (a cheap proxy for stack distance), over reused accesses only.
    util::Histogram reuse_distances{4096};
    double median_reuse_distance = 0.0;

    /// Footprint growth curve: unique blocks after each power-of-two access
    /// count (1, 2, 4, ... accesses), for sizing experiments.
    std::vector<std::size_t> footprint_at_pow2;

    /// Mean dynamic instructions per access.
    double instr_per_access = 0.0;
};

class StreamSource;

/// Incremental profile builder: feed the stream in chunks of any size, then
/// finish(). One pass, O(footprint) space (the reuse and footprint metrics
/// need one map entry per distinct block) — never O(trace length), so
/// arbitrarily long streamed traces can be profiled.
class StreamAnalyzer {
public:
    StreamAnalyzer();
    ~StreamAnalyzer();

    /// Appends the next chunk of the stream.
    void add(std::span<const Access> chunk);

    /// Finalizes and returns the profile. Call exactly once.
    [[nodiscard]] StreamProfile finish();

private:
    struct State;
    std::unique_ptr<State> state_;
    StreamProfile profile_;
};

/// Computes the profile in one pass (O(accesses) time, O(footprint) space).
[[nodiscard]] StreamProfile analyze_stream(std::span<const Access> stream);

/// Drains a stream cursor (source.hpp) chunk-wise into a profile.
[[nodiscard]] StreamProfile analyze(StreamSource& stream);

/// Pretty one-line-per-metric rendering for tools and benches.
[[nodiscard]] std::string to_string(const StreamProfile& profile);

}  // namespace tmb::trace
