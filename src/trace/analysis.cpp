#include "trace/analysis.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tmb::trace {

StreamProfile analyze_stream(std::span<const Access> stream) {
    StreamProfile p;
    p.accesses = stream.size();
    if (stream.empty()) return p;

    std::unordered_map<std::uint64_t, std::size_t> last_touch;  // block -> index
    std::unordered_set<std::uint64_t> written_blocks;
    last_touch.reserve(stream.size());

    std::size_t writes = 0;
    std::size_t sequential = 0;
    std::size_t reused = 0;
    std::uint64_t instr_total = 0;
    std::uint64_t current_run = 1;

    std::size_t next_pow2_mark = 1;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Access& a = stream[i];
        instr_total += a.instr_delta;
        if (a.is_write) {
            ++writes;
            written_blocks.insert(a.block);
        }

        if (i > 0) {
            if (a.block == stream[i - 1].block + 1) {
                ++sequential;
                ++current_run;
            } else {
                p.run_lengths.add(current_run);
                current_run = 1;
            }
        }

        const auto it = last_touch.find(a.block);
        if (it != last_touch.end()) {
            ++reused;
            p.reuse_distances.add(i - it->second);
            it->second = i;
        } else {
            last_touch.emplace(a.block, i);
        }

        if (i + 1 == next_pow2_mark) {
            p.footprint_at_pow2.push_back(last_touch.size());
            next_pow2_mark *= 2;
        }
    }
    p.run_lengths.add(current_run);
    if (p.footprint_at_pow2.empty() ||
        p.footprint_at_pow2.back() != last_touch.size()) {
        p.footprint_at_pow2.push_back(last_touch.size());
    }

    const double n = static_cast<double>(stream.size());
    p.unique_blocks = last_touch.size();
    p.write_fraction = static_cast<double>(writes) / n;
    p.written_block_fraction =
        static_cast<double>(written_blocks.size()) /
        static_cast<double>(p.unique_blocks);
    p.alpha = writes ? static_cast<double>(stream.size() - writes) /
                           static_cast<double>(writes)
                     : 0.0;
    p.mean_run_length = p.run_lengths.mean();
    p.sequential_fraction = static_cast<double>(sequential) / n;
    p.reuse_fraction = static_cast<double>(reused) / n;
    p.median_reuse_distance =
        static_cast<double>(p.reuse_distances.percentile(0.5));
    p.instr_per_access = static_cast<double>(instr_total) / n;
    return p;
}

std::string to_string(const StreamProfile& p) {
    std::ostringstream os;
    os << "accesses:            " << p.accesses << '\n'
       << "unique blocks:       " << p.unique_blocks << '\n'
       << "write fraction:      " << p.write_fraction << '\n'
       << "written-block frac:  " << p.written_block_fraction << '\n'
       << "alpha (reads/write): " << p.alpha << '\n'
       << "mean run length:     " << p.mean_run_length << '\n'
       << "sequential fraction: " << p.sequential_fraction << '\n'
       << "reuse fraction:      " << p.reuse_fraction << '\n'
       << "median reuse dist:   " << p.median_reuse_distance << '\n'
       << "instr per access:    " << p.instr_per_access << '\n';
    return os.str();
}

}  // namespace tmb::trace
