#include "trace/analysis.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "trace/source.hpp"

namespace tmb::trace {

/// The one-pass state machine behind the profile: everything the per-access
/// loop updates, independent of how the stream is chunked.
struct StreamAnalyzer::State {
    std::unordered_map<std::uint64_t, std::size_t> last_touch;  // block -> idx
    std::unordered_set<std::uint64_t> written_blocks;
    std::size_t index = 0;
    std::size_t writes = 0;
    std::size_t sequential = 0;
    std::size_t reused = 0;
    std::uint64_t instr_total = 0;
    std::uint64_t current_run = 1;
    std::size_t next_pow2_mark = 1;
    std::uint64_t prev_block = 0;
};

StreamAnalyzer::StreamAnalyzer() : state_(std::make_unique<State>()) {}
StreamAnalyzer::~StreamAnalyzer() = default;

void StreamAnalyzer::add(std::span<const Access> chunk) {
    State& s = *state_;
    for (const Access& a : chunk) {
        s.instr_total += a.instr_delta;
        if (a.is_write) {
            ++s.writes;
            s.written_blocks.insert(a.block);
        }

        if (s.index > 0) {
            if (a.block == s.prev_block + 1) {
                ++s.sequential;
                ++s.current_run;
            } else {
                profile_.run_lengths.add(s.current_run);
                s.current_run = 1;
            }
        }
        s.prev_block = a.block;

        const auto it = s.last_touch.find(a.block);
        if (it != s.last_touch.end()) {
            ++s.reused;
            profile_.reuse_distances.add(s.index - it->second);
            it->second = s.index;
        } else {
            s.last_touch.emplace(a.block, s.index);
        }

        ++s.index;
        if (s.index == s.next_pow2_mark) {
            profile_.footprint_at_pow2.push_back(s.last_touch.size());
            s.next_pow2_mark *= 2;
        }
    }
}

StreamProfile StreamAnalyzer::finish() {
    State& s = *state_;
    profile_.accesses = s.index;
    if (s.index == 0) return std::move(profile_);

    profile_.run_lengths.add(s.current_run);
    if (profile_.footprint_at_pow2.empty() ||
        profile_.footprint_at_pow2.back() != s.last_touch.size()) {
        profile_.footprint_at_pow2.push_back(s.last_touch.size());
    }

    const double n = static_cast<double>(s.index);
    profile_.unique_blocks = s.last_touch.size();
    profile_.write_fraction = static_cast<double>(s.writes) / n;
    profile_.written_block_fraction =
        static_cast<double>(s.written_blocks.size()) /
        static_cast<double>(profile_.unique_blocks);
    profile_.alpha = s.writes ? static_cast<double>(s.index - s.writes) /
                                    static_cast<double>(s.writes)
                              : 0.0;
    profile_.mean_run_length = profile_.run_lengths.mean();
    profile_.sequential_fraction = static_cast<double>(s.sequential) / n;
    profile_.reuse_fraction = static_cast<double>(s.reused) / n;
    profile_.median_reuse_distance =
        static_cast<double>(profile_.reuse_distances.percentile(0.5));
    profile_.instr_per_access = static_cast<double>(s.instr_total) / n;
    return std::move(profile_);
}

StreamProfile analyze_stream(std::span<const Access> stream) {
    StreamAnalyzer analyzer;
    analyzer.add(stream);
    return analyzer.finish();
}

StreamProfile analyze(StreamSource& stream) {
    StreamAnalyzer analyzer;
    std::vector<Access> chunk(kDefaultChunk);
    std::size_t n;
    while ((n = stream.next(chunk)) > 0) {
        analyzer.add(std::span(chunk).first(n));
    }
    return analyzer.finish();
}

std::string to_string(const StreamProfile& p) {
    std::ostringstream os;
    os << "accesses:            " << p.accesses << '\n'
       << "unique blocks:       " << p.unique_blocks << '\n'
       << "write fraction:      " << p.write_fraction << '\n'
       << "written-block frac:  " << p.written_block_fraction << '\n'
       << "alpha (reads/write): " << p.alpha << '\n'
       << "mean run length:     " << p.mean_run_length << '\n'
       << "sequential fraction: " << p.sequential_fraction << '\n'
       << "reuse fraction:      " << p.reuse_fraction << '\n'
       << "median reuse dist:   " << p.median_reuse_distance << '\n'
       << "instr per access:    " << p.instr_per_access << '\n';
    return os.str();
}

}  // namespace tmb::trace
