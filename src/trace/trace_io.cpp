#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tmb::trace {

void TextTraceScanner::fail(const std::string& what) const {
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(line_no_) + ": " + what);
}

TextTraceScanner::TextTraceScanner(std::istream& is) : is_(is) {
    while (std::getline(is_, line_)) {
        ++line_no_;
        if (line_.empty() || line_[0] == '#') continue;
        std::istringstream ls(line_);
        char tag = 0;
        std::size_t threads = 0;
        if (!(ls >> tag >> threads) || tag != 'T') {
            fail("expected 'T <thread_count>' header");
        }
        if (threads == 0 || threads > 1024) fail("bad thread count");
        std::string trailing;
        if (ls >> trailing) fail("trailing tokens after header");
        threads_ = threads;
        return;
    }
    throw std::runtime_error("trace parse error: missing 'T' header");
}

bool TextTraceScanner::next(std::size_t& tid, Access& out) {
    while (std::getline(is_, line_)) {
        ++line_no_;
        if (line_.empty() || line_[0] == '#') continue;
        std::istringstream ls(line_);
        std::size_t t = 0;
        char mode = 0;
        std::uint64_t block = 0;
        std::uint32_t instr_delta = 1;
        if (!(ls >> t >> mode >> std::hex >> block >> std::dec)) {
            fail("expected '<tid> <R|W> <hex block>'");
        }
        if (ls >> instr_delta) {
            // The >= 1 invariant of trace.hpp: a zero delta is a malformed
            // trace, not something to silently round up.
            if (instr_delta == 0) fail("instr_delta must be >= 1");
        } else if (!ls.eof()) {
            fail("instr_delta must be a number");
        } else {
            instr_delta = 1;
        }
        std::string trailing;
        if (ls.clear(), ls >> trailing) fail("trailing tokens on access line");
        if (t >= threads_) fail("thread id out of range");
        if (mode != 'R' && mode != 'W') fail("mode must be R or W");
        tid = t;
        out = Access{block, mode == 'W', instr_delta};
        return true;
    }
    return false;
}

void write_text_header(std::ostream& os, std::size_t thread_count) {
    os << "# tm_birthday trace v1\n";
    os << "T " << thread_count << '\n';
}

void write_text_chunk(std::ostream& os, std::size_t tid,
                      std::span<const Access> accesses) {
    for (const auto& a : accesses) {
        os << tid << ' ' << (a.is_write ? 'W' : 'R') << ' ' << std::hex
           << a.block << std::dec << ' ' << a.instr_delta << '\n';
    }
}

void write_text(std::ostream& os, const MultiThreadTrace& trace) {
    write_text_header(os, trace.streams.size());
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        write_text_chunk(os, t, trace.streams[t]);
    }
}

MultiThreadTrace read_text(std::istream& is) {
    TextTraceScanner scanner(is);
    MultiThreadTrace trace;
    trace.streams.resize(scanner.thread_count());
    std::size_t tid = 0;
    Access a;
    while (scanner.next(tid, a)) trace.streams[tid].push_back(a);
    return trace;
}

void save_text_file(const std::string& path, const MultiThreadTrace& trace) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_text(os, trace);
    if (!os) throw std::runtime_error("write failed: " + path);
}

MultiThreadTrace load_text_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return read_text(is);
}

}  // namespace tmb::trace
