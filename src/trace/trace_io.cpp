#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tmb::trace {

void write_text(std::ostream& os, const MultiThreadTrace& trace) {
    os << "# tm_birthday trace v1\n";
    os << "T " << trace.streams.size() << '\n';
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        for (const auto& a : trace.streams[t]) {
            os << t << ' ' << (a.is_write ? 'W' : 'R') << ' ' << std::hex
               << a.block << std::dec << ' ' << a.instr_delta << '\n';
        }
    }
}

MultiThreadTrace read_text(std::istream& is) {
    MultiThreadTrace trace;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;

    auto fail = [&](const std::string& what) {
        throw std::runtime_error("trace parse error at line " +
                                 std::to_string(line_no) + ": " + what);
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        if (!saw_header) {
            char tag = 0;
            std::size_t threads = 0;
            if (!(ls >> tag >> threads) || tag != 'T') {
                fail("expected 'T <thread_count>' header");
            }
            if (threads == 0 || threads > 1024) fail("bad thread count");
            trace.streams.resize(threads);
            saw_header = true;
            continue;
        }
        std::size_t tid = 0;
        char mode = 0;
        std::uint64_t block = 0;
        std::uint32_t instr_delta = 1;
        if (!(ls >> tid >> mode >> std::hex >> block >> std::dec)) {
            fail("expected '<tid> <R|W> <hex block>'");
        }
        ls >> instr_delta;  // optional
        if (tid >= trace.streams.size()) fail("thread id out of range");
        if (mode != 'R' && mode != 'W') fail("mode must be R or W");
        if (instr_delta == 0) instr_delta = 1;
        trace.streams[tid].push_back(Access{block, mode == 'W', instr_delta});
    }
    if (!saw_header) {
        throw std::runtime_error("trace parse error: missing 'T' header");
    }
    return trace;
}

void save_text_file(const std::string& path, const MultiThreadTrace& trace) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_text(os, trace);
    if (!os) throw std::runtime_error("write failed: " + path);
}

MultiThreadTrace load_text_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return read_text(is);
}

}  // namespace tmb::trace
