// synthetic.hpp — synthetic multithreaded address-trace generation.
//
// SUBSTITUTION (documented in DESIGN.md §2): the paper collected address
// traces from a 4-warehouse SPECJBB2005 run. We do not have those traces, so
// we generate synthetic per-thread streams that reproduce the properties the
// aliasing experiment is sensitive to:
//
//   * mostly-disjoint per-thread working sets (the paper removes true
//     conflicts before the experiment anyway),
//   * spatial locality: runs of consecutive block addresses (the paper's §4
//     notes real traces contain consecutive addresses that map to
//     consecutive ownership-table entries),
//   * temporal locality: a hot set that is revisited,
//   * a mix of object-sized strided accesses and scattered pointer-chasing,
//   * a write fraction around 1/3 (matching the paper's α ≈ 2).
//
// The alias experiment operates on the *first W written blocks* per stream
// after true-conflict removal, so the marginal distribution of table indices
// and their run structure is what matters — both are first-class parameters
// here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace tmb::trace {

/// Tunable parameters of the SPECJBB-like workload generator.
struct SpecJbbLikeParams {
    std::uint32_t threads = 4;           ///< paper: 4 warehouses
    /// Private heap arena size per thread, in blocks. Each thread's arena is
    /// disjoint, modelling warehouse-local allocation.
    std::uint64_t arena_blocks = 1u << 20;
    /// Shared-pool size in blocks (global structures touched by all threads;
    /// accesses here create true conflicts which the filter later removes).
    std::uint64_t shared_blocks = 1u << 14;
    double shared_fraction = 0.05;       ///< probability an access hits the shared pool
    double write_fraction = 1.0 / 3.0;   ///< α = 2 → one write per two reads
    /// Spatial run: probability of continuing a consecutive-block run.
    double run_continue = 0.55;          ///< mean run ≈ 2.2 blocks
    std::uint64_t max_run = 16;
    /// Temporal locality: probability of re-touching a recent block instead
    /// of visiting a new one.
    double reuse_fraction = 0.30;
    std::uint32_t reuse_window = 64;     ///< how far back reuse reaches
    /// Object-ish strides (in blocks) used when starting a new run.
    std::vector<std::uint64_t> strides = {1, 1, 2, 3, 8};
    std::uint32_t mean_instr_per_access = 3;
};

/// Deterministic generator for multithreaded SPECJBB-like traces.
class SpecJbbLikeGenerator {
public:
    explicit SpecJbbLikeGenerator(SpecJbbLikeParams params, std::uint64_t seed);

    /// Incremental single-stream emitter: produces exactly the access
    /// sequence of generate_stream, any chunk size, in O(reuse_window)
    /// state. This is what the streaming TraceSource layer (source.hpp)
    /// pulls from, so trace length never bounds memory.
    class Emitter {
    public:
        Emitter(const SpecJbbLikeParams& params, std::uint64_t seed,
                std::uint32_t thread_id);

        /// Fills `out` completely (the stream is unbounded) and returns
        /// out.size().
        std::size_t emit(std::span<Access> out);

    private:
        SpecJbbLikeParams params_;
        util::Xoshiro256 rng_;
        std::uint64_t arena_base_;
        std::vector<std::uint64_t> recent_;  ///< reuse ring buffer
        std::size_t recent_next_ = 0;
        std::uint64_t run_block_;
        std::uint64_t run_remaining_ = 0;
        std::uint64_t run_stride_ = 1;

        void remember(std::uint64_t block);
    };

    /// Builds the emitter for one thread's stream.
    [[nodiscard]] Emitter stream_emitter(std::uint32_t thread_id) const;

    /// Generates `accesses_per_thread` accesses for every thread.
    [[nodiscard]] MultiThreadTrace generate(std::size_t accesses_per_thread);

    /// Generates a single thread's stream (thread ids select disjoint arenas).
    [[nodiscard]] Stream generate_stream(std::uint32_t thread_id,
                                         std::size_t accesses);

    [[nodiscard]] const SpecJbbLikeParams& params() const noexcept { return params_; }

private:
    SpecJbbLikeParams params_;
    std::uint64_t seed_;
};

}  // namespace tmb::trace
