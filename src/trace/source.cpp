#include "trace/source.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "trace/binary_io.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "trace/zipf.hpp"

namespace tmb::trace {

std::uint64_t StreamSource::skip(std::uint64_t n) {
    Access scratch[256];
    std::uint64_t skipped = 0;
    while (skipped < n) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - skipped, std::size(scratch)));
        const std::size_t got = next(std::span(scratch, want));
        if (got == 0) break;
        skipped += got;
    }
    return skipped;
}

namespace {

/// Cursor over one in-memory stream; O(1) skip.
class MemoryStreamReader final : public StreamSource {
public:
    explicit MemoryStreamReader(const Stream& stream) : stream_(&stream) {}

    std::size_t next(std::span<Access> out) override {
        const std::size_t n =
            std::min(out.size(), stream_->size() - pos_);
        std::copy_n(stream_->begin() + static_cast<std::ptrdiff_t>(pos_), n,
                    out.begin());
        pos_ += n;
        return n;
    }

    std::uint64_t skip(std::uint64_t n) override {
        const std::uint64_t left = stream_->size() - pos_;
        const std::uint64_t skipped = std::min(n, left);
        pos_ += static_cast<std::size_t>(skipped);
        return skipped;
    }

private:
    const Stream* stream_;
    std::size_t pos_ = 0;
};

/// Bounds an unbounded generator emitter to `accesses` per stream.
template <typename Emitter>
class BoundedEmitterReader final : public StreamSource {
public:
    BoundedEmitterReader(Emitter emitter, std::uint64_t accesses)
        : emitter_(std::move(emitter)), remaining_(accesses) {}

    std::size_t next(std::span<Access> out) override {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(out.size(), remaining_));
        if (n == 0) return 0;
        emitter_.emit(out.first(n));
        remaining_ -= n;
        return n;
    }

private:
    Emitter emitter_;
    std::uint64_t remaining_;
};

void check_stream_index(std::size_t index, std::size_t count) {
    if (index >= count) {
        throw std::out_of_range("trace source: stream index " +
                                std::to_string(index) + " >= stream count " +
                                std::to_string(count));
    }
}

/// Common generator-source shape keys.
struct GeneratorShape {
    std::uint32_t threads;
    std::uint64_t accesses;
    std::uint64_t seed;
};

GeneratorShape generator_shape(const config::Config& cfg,
                               std::uint32_t default_threads) {
    GeneratorShape shape{
        .threads = cfg.get_u32("threads", default_threads),
        .accesses = cfg.get_u64("accesses", 1u << 20),
        .seed = cfg.get_u64("seed", 1),
    };
    if (shape.threads == 0) {
        throw std::invalid_argument("trace source: threads must be > 0");
    }
    return shape;
}

void reject_source_arg(std::string_view name, std::string_view arg) {
    if (!arg.empty()) {
        throw std::invalid_argument("trace source '" + std::string(name) +
                                    "' takes no ':' argument (got '" +
                                    std::string(arg) + "')");
    }
}

class JbbTraceSource final : public TraceSource {
public:
    JbbTraceSource(SpecJbbLikeParams params, std::uint64_t accesses,
                   std::uint64_t seed)
        : generator_(std::move(params), seed), accesses_(accesses) {}

    std::size_t stream_count() const override {
        return generator_.params().threads;
    }
    std::unique_ptr<StreamSource> stream(std::size_t index) override {
        check_stream_index(index, stream_count());
        return std::make_unique<
            BoundedEmitterReader<SpecJbbLikeGenerator::Emitter>>(
            generator_.stream_emitter(static_cast<std::uint32_t>(index)),
            accesses_);
    }

private:
    SpecJbbLikeGenerator generator_;
    std::uint64_t accesses_;
};

class ZipfTraceSource final : public TraceSource {
public:
    ZipfTraceSource(ZipfTraceParams params, std::uint64_t accesses,
                    std::uint64_t seed)
        : params_(params),
          sampler_(std::make_shared<const ZipfianSampler>(
              params.blocks_per_thread, params.skew)),
          accesses_(accesses),
          seed_(seed) {}

    std::size_t stream_count() const override { return params_.threads; }
    std::unique_ptr<StreamSource> stream(std::size_t index) override {
        check_stream_index(index, stream_count());
        return std::make_unique<BoundedEmitterReader<ZipfStreamEmitter>>(
            ZipfStreamEmitter(sampler_, params_, seed_,
                              static_cast<std::uint32_t>(index)),
            accesses_);
    }

private:
    ZipfTraceParams params_;
    std::shared_ptr<const ZipfianSampler> sampler_;
    std::uint64_t accesses_;
    std::uint64_t seed_;
};

class SpecTraceSource final : public TraceSource {
public:
    SpecTraceSource(const Spec2000Profile& profile, std::uint32_t threads,
                    std::uint64_t accesses, std::uint64_t seed)
        : profile_(profile),
          threads_(threads),
          accesses_(accesses),
          seed_(seed) {}

    std::size_t stream_count() const override { return threads_; }
    std::unique_ptr<StreamSource> stream(std::size_t index) override {
        check_stream_index(index, stream_count());
        // Stream 0 reproduces generate_spec2000_stream(profile, n, seed)
        // exactly; further streams decorrelate through the emitter's own
        // mix64 of seed + index.
        return std::make_unique<BoundedEmitterReader<Spec2000Emitter>>(
            Spec2000Emitter(profile_, seed_ + index), accesses_);
    }

private:
    Spec2000Profile profile_;
    std::uint32_t threads_;
    std::uint64_t accesses_;
    std::uint64_t seed_;
};

/// Cursor over one stream of a text trace file: owns its file handle and
/// scans line-wise, delivering only the target stream's records. Text has
/// no per-stream framing, so each cursor parses the whole file — draining
/// all S streams costs O(S x file). That is the compatibility path; for
/// big many-stream traces, `trace_tool convert` to the binary container,
/// whose block headers let cursors skip foreign streams in O(1).
class TextFileStreamReader final : public StreamSource {
public:
    TextFileStreamReader(const std::string& path, std::size_t stream)
        : is_(path), scanner_((ensure_open(path), is_)), target_(stream) {
        check_stream_index(stream, scanner_.thread_count());
    }

    std::size_t next(std::span<Access> out) override {
        std::size_t filled = 0;
        std::size_t tid = 0;
        Access a;
        while (filled < out.size() && scanner_.next(tid, a)) {
            if (tid == target_) out[filled++] = a;
        }
        return filled;
    }

private:
    void ensure_open(const std::string& path) const {
        if (!is_) throw std::runtime_error("cannot open for reading: " + path);
    }

    std::ifstream is_;
    TextTraceScanner scanner_;
    std::size_t target_;
};

class FileTraceSource final : public TraceSource {
public:
    explicit FileTraceSource(std::string path)
        : path_(std::move(path)), binary_(is_binary_trace_file(path_)) {
        if (binary_) {
            std::ifstream is(path_, std::ios::binary);
            threads_ = read_binary_header(is);
        } else {
            std::ifstream is(path_);
            if (!is) {
                throw std::runtime_error("cannot open for reading: " + path_);
            }
            threads_ = TextTraceScanner(is).thread_count();
        }
    }

    std::size_t stream_count() const override { return threads_; }
    std::unique_ptr<StreamSource> stream(std::size_t index) override {
        check_stream_index(index, threads_);
        if (binary_) return std::make_unique<BinaryStreamReader>(path_, index);
        return std::make_unique<TextFileStreamReader>(path_, index);
    }

private:
    std::string path_;
    bool binary_;
    std::size_t threads_ = 0;
};

/// Registers the built-in sources exactly once (same bootstrap pattern as
/// the table, backend and workload registries).
TraceSourceRegistry& registry() {
    static const bool bootstrapped = [] {
        auto& r = TraceSourceRegistry::instance();
        r.add_default("jbb", [](const config::Config& cfg,
                                std::string_view arg) {
            reject_source_arg("jbb", arg);
            const GeneratorShape shape = generator_shape(cfg, 4);
            SpecJbbLikeParams params;
            params.threads = shape.threads;
            return std::make_unique<JbbTraceSource>(
                std::move(params), shape.accesses, shape.seed);
        });
        r.add_default("zipf", [](const config::Config& cfg,
                                 std::string_view arg) {
            reject_source_arg("zipf", arg);
            const GeneratorShape shape = generator_shape(cfg, 4);
            ZipfTraceParams params;
            params.threads = shape.threads;
            params.skew = cfg.get_double("skew", params.skew);
            return std::make_unique<ZipfTraceSource>(params, shape.accesses,
                                                     shape.seed);
        });
        r.add_default("spec", [](const config::Config& cfg,
                                 std::string_view arg) {
            const GeneratorShape shape = generator_shape(cfg, 1);
            const std::string name =
                arg.empty() ? cfg.get("profile", "gcc") : std::string(arg);
            return std::make_unique<SpecTraceSource>(
                spec2000_profile(name), shape.threads, shape.accesses,
                shape.seed);
        });
        r.add_default("file", [](const config::Config& cfg,
                                 std::string_view arg) {
            const std::string path =
                arg.empty() ? cfg.get("path", "") : std::string(arg);
            if (path.empty()) {
                throw std::invalid_argument(
                    "trace source 'file' needs a path (source=file:<path>)");
            }
            return std::make_unique<FileTraceSource>(path);
        });
        return true;
    }();
    (void)bootstrapped;
    return TraceSourceRegistry::instance();
}

}  // namespace

MemoryTraceSource::MemoryTraceSource(const MultiThreadTrace& trace)
    : trace_(&trace) {}

MemoryTraceSource::MemoryTraceSource(MultiThreadTrace&& trace)
    : owned_(std::move(trace)), trace_(&owned_) {}

std::size_t MemoryTraceSource::stream_count() const {
    return trace_->streams.size();
}

std::unique_ptr<StreamSource> MemoryTraceSource::stream(std::size_t index) {
    check_stream_index(index, trace_->streams.size());
    return std::make_unique<MemoryStreamReader>(trace_->streams[index]);
}

MultiThreadTrace materialize(TraceSource& source) {
    MultiThreadTrace trace;
    trace.streams.resize(source.stream_count());
    std::vector<Access> chunk(kDefaultChunk);
    for (std::size_t t = 0; t < trace.streams.size(); ++t) {
        const auto reader = source.stream(t);
        std::size_t n;
        while ((n = reader->next(chunk)) > 0) {
            trace.streams[t].insert(trace.streams[t].end(), chunk.begin(),
                                    chunk.begin() + static_cast<std::ptrdiff_t>(n));
        }
    }
    return trace;
}

std::vector<std::string> trace_source_names() { return registry().names(); }

std::unique_ptr<TraceSource> make_trace_source(const config::Config& cfg) {
    const std::string spec = cfg.get("source", "jbb");
    const std::size_t colon = spec.find(':');
    const std::string head = spec.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    return registry().create(head, cfg, arg);
}

std::unique_ptr<TraceSource> open_trace_file(const std::string& path) {
    return std::make_unique<FileTraceSource>(path);
}

TraceFormat format_for_path(const std::string& path) {
    const auto ends_with = [&](std::string_view suffix) {
        return path.size() >= suffix.size() &&
               path.compare(path.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
    };
    return ends_with(".tbin") || ends_with(".bin") ? TraceFormat::kBinary
                                                   : TraceFormat::kText;
}

void save_trace_file(const std::string& path, TraceSource& source,
                     TraceFormat format) {
    std::ofstream os(path, format == TraceFormat::kBinary
                               ? std::ios::out | std::ios::binary
                               : std::ios::out);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);

    const std::size_t threads = source.stream_count();
    std::vector<Access> chunk(kDefaultChunk);
    if (format == TraceFormat::kBinary) {
        BinaryTraceWriter writer(os, threads);
        for (std::size_t t = 0; t < threads; ++t) {
            const auto reader = source.stream(t);
            std::size_t n;
            while ((n = reader->next(chunk)) > 0) {
                writer.write_chunk(t, std::span(chunk).first(n));
            }
        }
    } else {
        write_text_header(os, threads);
        for (std::size_t t = 0; t < threads; ++t) {
            const auto reader = source.stream(t);
            std::size_t n;
            while ((n = reader->next(chunk)) > 0) {
                write_text_chunk(os, t, std::span(chunk).first(n));
            }
        }
    }
    if (!os) throw std::runtime_error("write failed: " + path);
}

MultiThreadTrace load_trace_file(const std::string& path) {
    if (is_binary_trace_file(path)) return load_binary_file(path);
    return load_text_file(path);
}

}  // namespace tmb::trace
