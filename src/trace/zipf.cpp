#include "trace/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"

namespace tmb::trace {

ZipfianSampler::ZipfianSampler(std::uint64_t n, double s) {
    if (n == 0) throw std::invalid_argument("zipf universe must be non-empty");
    if (s < 0.0) throw std::invalid_argument("zipf skew must be >= 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfianSampler::sample(util::Xoshiro256& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfianSampler::pmf(std::uint64_t k) const {
    if (k >= cdf_.size()) return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

ZipfStreamEmitter::ZipfStreamEmitter(
    std::shared_ptr<const ZipfianSampler> sampler,
    const ZipfTraceParams& params, std::uint64_t seed, std::uint32_t thread_id)
    : sampler_(std::move(sampler)),
      rng_(seed),
      // Per-thread rank->block permutation base so the hot blocks of
      // different threads land at unrelated addresses.
      base_(static_cast<std::uint64_t>(thread_id + 1) << 32),
      write_fraction_(params.write_fraction),
      mean_instr_(std::max<std::uint32_t>(params.mean_instr_per_access, 1)) {
    if (!sampler_) throw std::invalid_argument("zipf emitter needs a sampler");
    // Per-thread RNG substreams via the xoshiro jump function: thread t gets
    // the base stream advanced by t * 2^128 steps, so streams are provably
    // non-overlapping (the ad-hoc seed ^ constant*(t+1) mixing this replaces
    // only made collisions unlikely, not impossible).
    for (std::uint32_t t = 0; t < thread_id; ++t) rng_.jump();
}

std::size_t ZipfStreamEmitter::emit(std::span<Access> out) {
    for (Access& slot : out) {
        const std::uint64_t rank = sampler_->sample(rng_);
        const bool is_write = rng_.bernoulli(write_fraction_);
        const auto instr = static_cast<std::uint32_t>(
            1 + rng_.below(2 * mean_instr_ - 1));
        slot = Access{base_ + rank, is_write, instr};
    }
    return out.size();
}

MultiThreadTrace generate_zipf_trace(const ZipfTraceParams& params,
                                     std::size_t accesses_per_thread,
                                     std::uint64_t seed) {
    if (params.threads == 0) throw std::invalid_argument("threads must be > 0");
    const auto sampler = std::make_shared<const ZipfianSampler>(
        params.blocks_per_thread, params.skew);

    MultiThreadTrace trace;
    trace.streams.resize(params.threads);
    for (std::uint32_t t = 0; t < params.threads; ++t) {
        ZipfStreamEmitter emitter(sampler, params, seed, t);
        Stream& stream = trace.streams[t];
        stream.resize(accesses_per_thread);
        emitter.emit(stream);
    }
    return trace;
}

}  // namespace tmb::trace
