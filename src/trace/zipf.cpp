#include "trace/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"

namespace tmb::trace {

ZipfianSampler::ZipfianSampler(std::uint64_t n, double s) {
    if (n == 0) throw std::invalid_argument("zipf universe must be non-empty");
    if (s < 0.0) throw std::invalid_argument("zipf skew must be >= 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfianSampler::sample(util::Xoshiro256& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfianSampler::pmf(std::uint64_t k) const {
    if (k >= cdf_.size()) return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

MultiThreadTrace generate_zipf_trace(const ZipfTraceParams& params,
                                     std::size_t accesses_per_thread,
                                     std::uint64_t seed) {
    if (params.threads == 0) throw std::invalid_argument("threads must be > 0");
    const ZipfianSampler sampler(params.blocks_per_thread, params.skew);

    MultiThreadTrace trace;
    trace.streams.resize(params.threads);
    // Per-thread RNG substreams via the xoshiro jump function: thread t gets
    // the base stream advanced by t * 2^128 steps, so streams are provably
    // non-overlapping (the ad-hoc seed ^ constant*(t+1) mixing this replaces
    // only made collisions unlikely, not impossible).
    util::Xoshiro256 substream{seed};
    for (std::uint32_t t = 0; t < params.threads; ++t) {
        util::Xoshiro256 rng = substream;
        substream.jump();
        // Per-thread rank->block permutation base so the hot blocks of
        // different threads land at unrelated addresses.
        const std::uint64_t base =
            static_cast<std::uint64_t>(t + 1) << 32;

        Stream& stream = trace.streams[t];
        stream.reserve(accesses_per_thread);
        for (std::size_t i = 0; i < accesses_per_thread; ++i) {
            const std::uint64_t rank = sampler.sample(rng);
            const bool is_write = rng.bernoulli(params.write_fraction);
            const auto instr = static_cast<std::uint32_t>(
                1 + rng.below(2 * std::max<std::uint32_t>(
                                      params.mean_instr_per_access, 1) -
                              1));
            stream.push_back(Access{base + rank, is_write, instr});
        }
    }
    return trace;
}

}  // namespace tmb::trace
